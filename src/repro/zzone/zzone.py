"""The Z-zone manager (§3.1–3.3).

Owns the block trie, the circular sweep list, the deferred-removal queue,
and the byte budget.  All mutation goes through block reconstruction —
"writing a new item into a block always leads to its reconstruction" — and
every reconstruction is charged to the compression/decompression counters
that the performance model and the adaptive controller consume.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.clock import VirtualClock
from repro.common.errors import CacheError, CodecError, ItemTooLargeError
from repro.common.hashing import hash_key
from repro.common.records import KVItem
from repro.common.rng import make_rng
from repro.compression.base import Compressor
from repro.compression.lz4 import LZ4Compressor
from repro.compression.null import NullCompressor
from repro.compression.zlibc import ZlibCompressor
from repro.zzone.block import Block, LargeItem, decode_items, entry_spans
from repro.zzone.trie import BlockTrie

DEFAULT_BLOCK_CAPACITY = 2048

#: Consecutive codec failures tolerated before falling back to the next
#: codec in the degradation chain (lz4 -> deflate -> null).
CODEC_FAULT_TOLERANCE = 3

#: Overage fraction beyond which :meth:`ZZone._evict_to_fit` stops
#: respecting the Access Filter and force-sweeps (emergency pressure,
#: e.g. a large externally injected capacity squeeze).  Normal operation
#: never exceeds this: puts evict incrementally, and although adaptive
#: resizing's ~3 %-of-total steps can be a sizeable fraction of a
#: near-empty Z-zone's own budget, they stay safely below 50 % (a 40 %
#: injected squeeze on a full zone overshoots ~67 %).
EMERGENCY_OVERAGE = 0.5


@dataclass
class ZZoneStats:
    """Operation counters; the cost model prices these."""

    gets: int = 0
    hits: int = 0
    misses: int = 0
    #: GETs/DELETEs answered "absent" by a Content Filter alone.
    filter_skips: int = 0
    #: Filter said maybe but the block scan came up empty.
    false_positives: int = 0
    decompressions: int = 0
    compressions: int = 0
    puts: int = 0
    deletes: int = 0
    evicted_items: int = 0
    evicted_bytes: int = 0
    splits: int = 0
    sweep_visits: int = 0
    pending_removals_executed: int = 0
    pending_removals_merged: int = 0
    #: Integrity taxonomy: payload failed its CRC before decompression.
    checksum_failures: int = 0
    #: Codec raised, or returned bytes of the wrong shape.
    codec_failures: int = 0
    #: Times the zone switched to the next codec in the fallback chain.
    codec_fallbacks: int = 0
    #: Damaged blocks dropped whole; their items became counted misses.
    quarantined_blocks: int = 0
    quarantined_items: int = 0
    quarantined_bytes: int = 0
    #: Forced full-pressure sweeps triggered by severe capacity overage.
    emergency_sweeps: int = 0
    #: Write-combining append region: puts absorbed by a staging buffer
    #: (no compression), and region-full merges into the container.
    staged_puts: int = 0
    staging_flushes: int = 0
    #: Decompressed-container cache: GETs answered from a cached container
    #: (no decompression) vs. GETs that had to decompress and fill it.
    container_cache_hits: int = 0
    container_cache_misses: int = 0
    #: Staged bytes failed their running CRC; the block was quarantined.
    staged_checksum_failures: int = 0
    #: Batched GETs: physical decompressions skipped because an earlier
    #: key in the same batch already decoded the block's container.  The
    #: priced ``decompressions`` counter still charges these as-if
    #: sequential (stats parity); this counter records the real savings.
    container_decodes_saved: int = 0

    @property
    def expensive_ops(self) -> int:
        """Operations involving block (de)compression (§3.3.1's metric)."""
        return self.decompressions + self.compressions

    @property
    def integrity_events(self) -> int:
        """Total detected integrity failures (checksum + codec)."""
        return (
            self.checksum_failures
            + self.codec_failures
            + self.staged_checksum_failures
        )


class ReadBatch:
    """Per-batch memo shared by one :meth:`ZZone.get_many` call.

    Holds work that may legally be shared across the keys of one batch
    without changing any observable state or counter relative to the
    sequential path:

    * decoded containers keyed by block generation (one physical
      decompression serves every key in the block; the priced
      ``decompressions`` counter is still charged per key),
    * payload/staged CRC verification results (CRC is verified once per
      container per batch — re-verifying identical bytes is pure waste),
    * the trie-walk memo (same last-level prefix -> same leaf, with the
      probe telemetry replayed so ``average_probes()`` stays exact).

    Generations are process-unique and minted fresh on every rebuild, so
    any mid-batch mutation (quarantine, promotion-driven rebuild)
    invalidates the relevant memo entries by construction; the trie memo
    is guarded by :attr:`BlockTrie.version`.
    """

    __slots__ = ("containers", "payload_verified", "staged_verified",
                 "leaf_cache", "trie_version")

    def __init__(self) -> None:
        self.containers: Dict[int, bytes] = {}
        self.payload_verified: set = set()
        self.staged_verified: set = set()
        self.leaf_cache: Dict[int, tuple] = {}
        self.trie_version = -1


#: Sentinel returned by ``_resolve_batched`` when the key still needs a
#: container scan (vs. a fully resolved hit/miss).
_SCAN = object()
_DONE = object()


class ZZone:
    """Compressed cold partition with sweep replacement."""

    def __init__(
        self,
        capacity: int,
        compressor: Optional[Compressor] = None,
        block_capacity: int = DEFAULT_BLOCK_CAPACITY,
        clock: Optional[VirtualClock] = None,
        seed: int = 0,
        use_content_filter: bool = True,
        use_access_filter: bool = True,
        verify_checksums: bool = True,
        faults=None,
        append_region_bytes: int = 0,
        decompressed_cache_blocks: int = 0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if block_capacity < 64:
            raise ValueError(f"block_capacity must be >= 64, got {block_capacity}")
        if append_region_bytes < 0:
            raise ValueError(
                f"append_region_bytes must be >= 0, got {append_region_bytes}"
            )
        if decompressed_cache_blocks < 0:
            raise ValueError(
                "decompressed_cache_blocks must be >= 0, "
                f"got {decompressed_cache_blocks}"
            )
        self.capacity = capacity
        self.block_capacity = block_capacity
        #: Ablation switches: without the Content Filter every absent-key
        #: GET/DELETE decompresses its block (Figure 13's "no filter"
        #: baseline); without the Access Filter the sweep picks victims
        #: blindly.
        self.use_content_filter = use_content_filter
        self.use_access_filter = use_access_filter
        #: Verify each block's payload CRC before decompressing it.  Off,
        #: the zone trusts payloads (the PR-1 fast path); codec failures
        #: are still caught and quarantined either way.
        self.verify_checksums = verify_checksums
        #: Optional fault injector (duck-typed ``FaultInjector``): consulted
        #: on every keyed access when present, a single ``is None`` check
        #: when absent.
        self._faults = faults
        self.compressor = compressor if compressor is not None else ZlibCompressor()
        self.clock = clock if clock is not None else VirtualClock()
        self.stats = ZZoneStats()
        self._rng = make_rng(seed, "zzone-sweep")
        self._trie = BlockTrie()
        self._used = 0
        self._item_count = 0
        self._hand: Optional[Block] = None
        #: Graceful degradation: codecs to fall back to after repeated
        #: codec faults.  The chain always ends in a plain NullCompressor
        #: (which cannot fail), so a reconstruction can always complete.
        self._fallbacks = self._fallback_chain()
        self._codec_strikes = 0
        #: key -> (hashed_key, earliest execution time); §3.3.2's postponed
        #: removals of stale versions after a SET hit the N-zone.
        self._pending_removals: Dict[bytes, Tuple[int, float]] = {}
        #: Fast-path knobs (both default off, keeping the experiment
        #: configuration's behaviour bit-for-bit unchanged).
        self.append_region_bytes = append_region_bytes
        self.decompressed_cache_blocks = decompressed_cache_blocks
        #: LRU of decompressed containers keyed by block generation.  A
        #: host-side scratch buffer: its bytes are *not* charged to the
        #: zone's capacity (metered separately via
        #: :meth:`container_cache_bytes`), and generations are
        #: process-unique, so a rebuilt block can never alias a stale
        #: entry.
        self._container_cache: "OrderedDict[int, bytes]" = OrderedDict()
        root = self._build_block([])
        self._trie.insert_root(root)
        self._link_initial(root)
        self._used = root.memory_bytes + self._trie.memory_bytes

    # -- circular sweep list --------------------------------------------------

    def _link_initial(self, block: Block) -> None:
        block.next_block = block
        block.prev_block = block
        self._hand = block

    def _splice_remove(self, block: Block) -> None:
        """Unlink ``block`` from the ring (it must not be the only node)."""
        if block.next_block is block:
            raise ValueError("cannot remove the last ring node")
        block.prev_block.next_block = block.next_block
        block.next_block.prev_block = block.prev_block
        if self._hand is block:
            self._hand = block.next_block

    def _splice_replace(self, old: Block, replacements: List[Block]) -> None:
        """Replace ``old`` in the ring with one or two blocks."""
        first, last = replacements[0], replacements[-1]
        if old.next_block is old:
            # Single-node ring.
            prev_node, next_node = last, first
        else:
            prev_node, next_node = old.prev_block, old.next_block
        prev_node.next_block = first
        first.prev_block = prev_node
        last.next_block = next_node
        next_node.prev_block = last
        if len(replacements) == 2:
            first.next_block = last
            last.prev_block = first
        if self._hand is old:
            self._hand = first

    # -- byte accounting -------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def item_count(self) -> int:
        return self._item_count

    @property
    def block_count(self) -> int:
        return self._trie.block_count

    def resize(self, capacity: int) -> None:
        """Change the byte budget; shrinking evicts immediately."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._evict_to_fit()

    def _recharge(self, old_bytes: int, new_bytes: int) -> None:
        self._used += new_bytes - old_bytes

    # -- integrity and degradation ---------------------------------------------

    def _fallback_chain(self) -> List[Compressor]:
        """Codecs to degrade to: lz4 -> deflate -> null, deflate -> null.

        A fault-wrapped codec exposes its real codec as ``.inner``; the
        fallbacks themselves are plain codecs (degrading means leaving the
        faulty codec behind), so the chain always terminates in a codec
        that cannot raise.
        """
        inner = getattr(self.compressor, "inner", self.compressor)
        chain: List[Compressor] = []
        if isinstance(inner, LZ4Compressor):
            chain.append(ZlibCompressor())
        if not (type(inner) is NullCompressor and inner is self.compressor):
            chain.append(NullCompressor())
        return chain

    def _note_codec_failure(self) -> None:
        """Count a codec fault; repeated faults advance the fallback chain."""
        self.stats.codec_failures += 1
        self._codec_strikes += 1
        if self._codec_strikes >= CODEC_FAULT_TOLERANCE and self._fallbacks:
            self.compressor = self._fallbacks.pop(0)
            self.stats.codec_fallbacks += 1
            self._codec_strikes = 0

    def _build_block(
        self,
        items: List[KVItem],
        depth: int = 0,
        prefix: int = 0,
        large_refs: Optional[Dict[bytes, LargeItem]] = None,
    ) -> Block:
        """Build a block with the current codec, degrading on codec faults."""
        for _attempt in range(4 * (len(self._fallbacks) + 1)):
            try:
                block = Block.build(
                    items,
                    self.compressor,
                    depth=depth,
                    prefix=prefix,
                    large_refs=large_refs,
                    keep_container=self.decompressed_cache_blocks > 0,
                )
            except CodecError:
                self._note_codec_failure()
                continue
            self._codec_strikes = 0
            self.stats.compressions += 1
            self._cache_store(block)
            return block
        raise CodecError("compression failed with every codec in the chain")

    def _compress_value(self, value: bytes) -> Tuple["Compressed", Compressor]:
        """Compress a large item's value, degrading on codec faults."""
        for _attempt in range(4 * (len(self._fallbacks) + 1)):
            codec = self.compressor
            try:
                compressed = codec.compress(value)
            except CodecError:
                self._note_codec_failure()
                continue
            self._codec_strikes = 0
            self.stats.compressions += 1
            return compressed, codec
        raise CodecError("compression failed with every codec in the chain")

    def _container_of(self, leaf: Block, charge: bool = True) -> Optional[bytes]:
        """Checksummed decompression of ``leaf``'s container.

        Returns the container bytes, or None after quarantining the block
        when its checksum fails or its codec raises / returns bytes of the
        wrong size.  ``charge=False`` keeps the decompression off the
        priced stats (accounting-neutral iteration).
        """
        if charge:
            self.stats.decompressions += 1
        if self.verify_checksums and not leaf.checksum_ok():
            self.stats.checksum_failures += 1
            self._quarantine(leaf)
            return None
        codec = leaf.codec or self.compressor
        try:
            container = codec.decompress(leaf.compressed)
        except Exception:
            self._note_codec_failure()
            self._quarantine(leaf)
            return None
        if len(container) != leaf.uncompressed_size:
            # The codec produced garbage of the wrong shape.
            self._note_codec_failure()
            self._quarantine(leaf)
            return None
        return container

    def _lookup_container(self, leaf: Block) -> Optional[bytes]:
        """Container of ``leaf`` via the decompressed-container cache.

        Every read path — GET, flush merges, sweep, delete — goes through
        here.  A hit still verifies the payload CRC before trusting the
        cached bytes: CRC32 over the compressed payload is an order of
        magnitude cheaper than decompression, so corruption is detected
        with its usual latency (a flipped bit quarantines the block even
        when the cache is warm) while the expensive work is skipped.
        With the cache disabled this is exactly :meth:`_container_of`.
        """
        if self.decompressed_cache_blocks == 0:
            return self._container_of(leaf)
        cached = self._container_cache.get(leaf.generation)
        if cached is not None:
            if self.verify_checksums and not leaf.checksum_ok():
                self.stats.checksum_failures += 1
                self._quarantine(leaf)
                return None
            self.stats.container_cache_hits += 1
            self._container_cache.move_to_end(leaf.generation)
            return cached
        self.stats.container_cache_misses += 1
        container = self._container_of(leaf)
        if container is not None:
            self._container_cache[leaf.generation] = container
            while len(self._container_cache) > self.decompressed_cache_blocks:
                self._container_cache.popitem(last=False)
        return container

    def _invalidate_cached(self, block: Block) -> None:
        """Drop a replaced block's cached container (if any)."""
        if self._container_cache:
            self._container_cache.pop(block.generation, None)

    def _cache_store(self, block: Block) -> None:
        """Write-through: seed the cache with a freshly built container.

        Construction had the uncompressed bytes in hand
        (``built_container``), so caching them here makes the first read
        after a rebuild a hit instead of a decompression.  The bytes are
        consumed — a block never retains its own uncompressed copy.
        """
        container = block.built_container
        if container is None:
            return
        block.built_container = None
        self._container_cache[block.generation] = container
        while len(self._container_cache) > self.decompressed_cache_blocks:
            self._container_cache.popitem(last=False)

    def container_cache_bytes(self) -> int:
        """Scratch bytes currently held by the decompressed-container
        cache (not charged to the zone's capacity; exposed as a gauge)."""
        return sum(len(c) for c in self._container_cache.values())

    def _large_bytes(
        self, leaf: Block, key: bytes, large: LargeItem, charge: bool = True
    ) -> Optional[bytes]:
        """Checksummed decompression of a large item; drops it on damage."""
        if charge:
            self.stats.decompressions += 1
        if self.verify_checksums and not large.checksum_ok():
            self.stats.checksum_failures += 1
            self._drop_large(leaf, key)
            return None
        codec = large.codec or self.compressor
        try:
            value = codec.decompress(large.compressed)
        except Exception:
            self._note_codec_failure()
            self._drop_large(leaf, key)
            return None
        if len(key) + len(value) != large.uncompressed_size:
            self._note_codec_failure()
            self._drop_large(leaf, key)
            return None
        return value

    def _drop_large(self, leaf: Block, key: bytes) -> None:
        """Quarantine a single damaged large item (its block is intact)."""
        old_bytes = leaf.memory_bytes
        del leaf.large_refs[key]
        self._item_count -= 1
        self.stats.quarantined_items += 1
        self._recharge(old_bytes, leaf.memory_bytes)

    def _quarantine(self, block: Block) -> Block:
        """Drop a damaged block and rebuild its trie slot empty.

        The block's items become counted misses for whoever asks for them
        next; the replacement keeps the trie shape and the sweep ring
        intact so serving continues uninterrupted.
        """
        lost = block.item_count + block.staged_count + len(block.large_refs)
        self.stats.quarantined_blocks += 1
        self.stats.quarantined_items += lost
        self.stats.quarantined_bytes += block.memory_bytes
        self._item_count -= lost
        replacement = self._build_block([], depth=block.depth, prefix=block.prefix)
        self._trie.replace_leaf(block, replacement)
        self._splice_replace(block, [replacement])
        self._recharge(block.memory_bytes, replacement.memory_bytes)
        self._invalidate_cached(block)
        return replacement

    # -- core operations --------------------------------------------------------

    def get(self, key: bytes, hashed: Optional[int] = None) -> Optional[Tuple[bytes, Optional[float]]]:
        """Look up ``key``; returns (value, reuse_time) or None.

        ``reuse_time`` is the gap since the item's recorded previous access
        (None on the first recorded access) — the input to the N-zone
        promotion rule (§3.3.2).
        """
        if hashed is None:
            hashed = hash_key(key)
        self.stats.gets += 1
        leaf = self._trie.find_leaf(hashed)
        if leaf is None:
            self.stats.misses += 1
            return None
        if self._faults is not None:
            self._faults.maybe_corrupt(leaf)
        if self.use_content_filter and not leaf.maybe_contains(hashed):
            self.stats.filter_skips += 1
            self.stats.misses += 1
            return None
        if leaf.staged_index:
            # The append region is checked before the container and before
            # large refs: a staged entry is always the newest write of its
            # key.  Its running CRC is verified first so a bit-flip in
            # staged bytes can never be served.
            if self.verify_checksums and not leaf.staged_checksum_ok():
                self.stats.staged_checksum_failures += 1
                self._quarantine(leaf)
                self.stats.misses += 1
                return None
            value = leaf.staged_lookup(key)
            if value is not None:
                reuse = leaf.record_get(hashed, self.clock.now())
                self.stats.hits += 1
                return value, reuse
        large = leaf.large_refs.get(key)
        if large is not None:
            value = self._large_bytes(leaf, key, large)
            if value is None:
                # Damaged large item: quarantined, counted as a miss.
                self.stats.misses += 1
                return None
            large.accessed = True
            reuse = leaf.record_get(hashed, self.clock.now())
            self.stats.hits += 1
            return value, reuse
        container = self._lookup_container(leaf)
        if container is None:
            # Damaged block: quarantined, its items are misses from now on.
            self.stats.misses += 1
            return None
        value = leaf.scan(container, key, hashed)
        if value is None:
            # A decompression that found nothing: a filter false positive
            # when the filter is on, plain wasted work when it is off.
            self.stats.false_positives += 1
            self.stats.misses += 1
            return None
        reuse = leaf.record_get(hashed, self.clock.now())
        self.stats.hits += 1
        return value, reuse

    # -- batched reads ----------------------------------------------------------

    def read_batch(self) -> Optional[ReadBatch]:
        """A fresh per-batch memo, or None when batching must stand down.

        With a fault injector armed, every keyed access must pass through
        :meth:`get` so corruption points fire at their seeded positions —
        the chaos harnesses' byte-identical verdicts depend on it.
        """
        if self._faults is not None:
            return None
        return ReadBatch()

    def get_batched(
        self, key: bytes, hashed: int, batch: Optional[ReadBatch]
    ) -> Optional[Tuple[bytes, Optional[float]]]:
        """One key of a batched read; exactly :meth:`get` plus the memo."""
        if batch is None or self._faults is not None:
            return self.get(key, hashed)
        kind, payload = self._resolve_batched(key, hashed, batch)
        if kind is _SCAN:
            leaf, container = payload
            return self._finish_scan(leaf, key, hashed, leaf.scan(container, key, hashed))
        return payload

    def get_many(
        self, keyed: List[Tuple[bytes, int]]
    ) -> List[Optional[Tuple[bytes, Optional[float]]]]:
        """Batched lookup of ``(key, hashed)`` pairs, in caller order.

        Result- and stats-identical to calling :meth:`get` per key (the
        property tests assert this bit for bit), while each block's
        container is physically decoded and CRC-verified at most once per
        batch.  Keys are *processed* in caller order — bucketing happens
        through the generation-keyed memo, not by reordering — because
        order is observable: container-cache LRU state, promotion
        bookkeeping, and recent-access records all depend on it.  Scans
        against blocks with no staged entries or large refs are deferred
        per block and resolved in one sorted pass (:meth:`Block.scan_many`);
        that is safe because a pure-container block's per-key effects
        (counters, ``record_get``) commute with other blocks' and are
        still applied in caller order.
        """
        if self._faults is not None:
            return [self.get(key, hashed) for key, hashed in keyed]
        batch = ReadBatch()
        results: List[Optional[Tuple[bytes, Optional[float]]]] = [None] * len(keyed)
        #: generation -> (leaf, container, [(index, key, hashed), ...])
        deferred: "OrderedDict[int, tuple]" = OrderedDict()
        for index, (key, hashed) in enumerate(keyed):
            kind, payload = self._resolve_batched(key, hashed, batch)
            if kind is _SCAN:
                leaf, container = payload
                if leaf.staged_index or leaf.large_refs:
                    # Mixed-path blocks keep strict per-key order: their
                    # recent-access records interleave staged hits with
                    # container hits, which a deferred scan would reorder.
                    results[index] = self._finish_scan(
                        leaf, key, hashed, leaf.scan(container, key, hashed)
                    )
                else:
                    group = deferred.get(leaf.generation)
                    if group is None:
                        deferred[leaf.generation] = (leaf, container, [(index, key, hashed)])
                    else:
                        group[2].append((index, key, hashed))
            else:
                results[index] = payload
        for leaf, container, queries in deferred.values():
            values = leaf.scan_many(container, [(key, hashed) for _i, key, hashed in queries])
            for (index, key, hashed), value in zip(queries, values):
                results[index] = self._finish_scan(leaf, key, hashed, value)
        return results

    def _finish_scan(
        self, leaf: Block, key: bytes, hashed: int, value: Optional[bytes]
    ) -> Optional[Tuple[bytes, Optional[float]]]:
        """Shared tail of :meth:`get`: account for a container-scan outcome."""
        if value is None:
            self.stats.false_positives += 1
            self.stats.misses += 1
            return None
        reuse = leaf.record_get(hashed, self.clock.now())
        self.stats.hits += 1
        return value, reuse

    def _resolve_batched(self, key: bytes, hashed: int, batch: ReadBatch):
        """Mirror of :meth:`get` up to (but excluding) the container scan.

        Returns ``(_DONE, result)`` for a fully resolved hit/miss or
        ``(_SCAN, (leaf, container))`` when the key still needs its block
        scanned.  Every counter is charged exactly where the sequential
        path charges it.
        """
        stats = self.stats
        stats.gets += 1
        trie = self._trie
        if batch.trie_version != trie.version:
            batch.leaf_cache.clear()
            batch.trie_version = trie.version
        leaf = trie.find_leaf_batched(hashed, batch.leaf_cache)
        if leaf is None:
            stats.misses += 1
            return _DONE, None
        if self.use_content_filter and not leaf.maybe_contains(hashed):
            stats.filter_skips += 1
            stats.misses += 1
            return _DONE, None
        if leaf.staged_index:
            if self.verify_checksums and not self._staged_ok_batched(leaf, batch):
                stats.staged_checksum_failures += 1
                self._quarantine(leaf)
                stats.misses += 1
                return _DONE, None
            value = leaf.staged_lookup(key)
            if value is not None:
                reuse = leaf.record_get(hashed, self.clock.now())
                stats.hits += 1
                return _DONE, (value, reuse)
        large = leaf.large_refs.get(key)
        if large is not None:
            value = self._large_bytes(leaf, key, large)
            if value is None:
                stats.misses += 1
                return _DONE, None
            large.accessed = True
            reuse = leaf.record_get(hashed, self.clock.now())
            stats.hits += 1
            return _DONE, (value, reuse)
        container = self._lookup_container_batched(leaf, batch)
        if container is None:
            stats.misses += 1
            return _DONE, None
        return _SCAN, (leaf, container)

    def _staged_ok_batched(self, leaf: Block, batch: ReadBatch) -> bool:
        """Staged CRC, verified once per (generation, buffer length).

        The buffer length rides in the token because staged appends do
        not mint a new generation: a put between two reads of the same
        batch cannot happen today (batches only read), but the token
        keeps the memo safe if that ever changes.
        """
        token = (leaf.generation, len(leaf.staged_buffer))
        if token in batch.staged_verified:
            return True
        if leaf.staged_checksum_ok():
            batch.staged_verified.add(token)
            return True
        return False

    def _payload_ok_batched(self, leaf: Block, batch: ReadBatch) -> bool:
        """Payload CRC, verified once per generation per batch."""
        if leaf.generation in batch.payload_verified:
            return True
        if leaf.checksum_ok():
            batch.payload_verified.add(leaf.generation)
            return True
        return False

    def _container_of_batched(
        self, leaf: Block, batch: ReadBatch
    ) -> Optional[bytes]:
        """:meth:`_container_of` backed by the batch's container memo.

        The priced ``decompressions`` counter is charged unconditionally
        — exactly as the sequential path would — and the memo only spares
        the physical decode, counted in ``container_decodes_saved``.
        """
        self.stats.decompressions += 1
        if self.verify_checksums and not self._payload_ok_batched(leaf, batch):
            self.stats.checksum_failures += 1
            self._quarantine(leaf)
            return None
        memo = batch.containers.get(leaf.generation)
        if memo is not None:
            self.stats.container_decodes_saved += 1
            return memo
        codec = leaf.codec or self.compressor
        try:
            container = codec.decompress(leaf.compressed)
        except Exception:
            self._note_codec_failure()
            self._quarantine(leaf)
            return None
        if len(container) != leaf.uncompressed_size:
            self._note_codec_failure()
            self._quarantine(leaf)
            return None
        batch.containers[leaf.generation] = container
        return container

    def _lookup_container_batched(
        self, leaf: Block, batch: ReadBatch
    ) -> Optional[bytes]:
        """:meth:`_lookup_container` with the batch memo underneath.

        The *real* decompressed-container cache is probed and maintained
        exactly as on the sequential path — same hit/miss counters, same
        LRU movement, same fills and trims — so cache state after a batch
        is indistinguishable from the equivalent GET loop.
        """
        if self.decompressed_cache_blocks == 0:
            return self._container_of_batched(leaf, batch)
        cached = self._container_cache.get(leaf.generation)
        if cached is not None:
            if self.verify_checksums and not self._payload_ok_batched(leaf, batch):
                self.stats.checksum_failures += 1
                self._quarantine(leaf)
                return None
            self.stats.container_cache_hits += 1
            self._container_cache.move_to_end(leaf.generation)
            return cached
        self.stats.container_cache_misses += 1
        container = self._container_of_batched(leaf, batch)
        if container is not None:
            self._container_cache[leaf.generation] = container
            while len(self._container_cache) > self.decompressed_cache_blocks:
                self._container_cache.popitem(last=False)
        return container

    def maybe_contains(self, key: bytes, hashed: Optional[int] = None) -> bool:
        """Content-Filter-only membership check (no decompression)."""
        if hashed is None:
            hashed = hash_key(key)
        leaf = self._trie.find_leaf(hashed)
        return leaf is not None and leaf.maybe_contains(hashed)

    def put(self, key: bytes, value: bytes, hashed: Optional[int] = None) -> None:
        """Insert or replace an item (typically an N-zone eviction)."""
        if hashed is None:
            hashed = hash_key(key)
        item_size = len(key) + len(value)
        if item_size > self.capacity:
            raise ItemTooLargeError(key, item_size, self.capacity)
        self.stats.puts += 1
        # A put of the same key supersedes any postponed removal: the
        # paper's "removal and write operations are merged into one".
        pending = self._pending_removals.pop(key, None)
        if pending is not None:
            self.stats.pending_removals_merged += 1
        leaf = self._trie.find_leaf(hashed)
        if self._faults is not None:
            self._faults.maybe_corrupt(leaf)
        try:
            if item_size > self.block_capacity // 2:
                self._put_large(leaf, key, value, hashed)
            else:
                self._put_compact(leaf, key, value, hashed)
        except CacheError:
            # Rollback path: reconstruction failed before any structure
            # was swapped in (all mutation happens after a successful
            # build), so byte accounting and the sweep list are already
            # unchanged — only the merged pending removal needs restoring.
            if pending is not None:
                self._pending_removals[key] = pending
                self.stats.pending_removals_merged -= 1
            raise
        self._evict_to_fit()

    def delete(self, key: bytes, hashed: Optional[int] = None) -> bool:
        """Remove ``key`` if present; filter-negative deletes are free."""
        if hashed is None:
            hashed = hash_key(key)
        self.stats.deletes += 1
        leaf = self._trie.find_leaf(hashed)
        if leaf is None:
            return False
        if self._faults is not None:
            self._faults.maybe_corrupt(leaf)
        if self.use_content_filter and not leaf.maybe_contains(hashed):
            self.stats.filter_skips += 1
            return False
        self._pending_removals.pop(key, None)
        return self._remove_from_block(leaf, key, hashed)

    def schedule_removal(self, key: bytes, hashed: int, not_before: float) -> None:
        """Postpone removing a stale version until ``not_before`` (§3.3.2)."""
        if self.maybe_contains(key, hashed):
            self._pending_removals[key] = (hashed, not_before)

    # -- insertion internals ------------------------------------------------------

    def _put_compact(self, leaf: Block, key: bytes, value: bytes, hashed: int) -> None:
        if self.append_region_bytes > 0:
            self._put_staged(leaf, key, value, hashed)
            return
        container = self._lookup_container(leaf)
        if container is None:
            # The block was damaged and quarantined; insert into the
            # rebuilt (empty, checksum-valid) slot instead.
            self._put_compact(self._trie.find_leaf(hashed), key, value, hashed)
            return
        items = decode_items(container)
        replaced = False
        for position, existing in enumerate(items):
            if existing.key == key:
                items[position] = KVItem(key=key, value=value, hashed_key=hashed)
                replaced = True
                break
        if not replaced:
            items.append(KVItem(key=key, value=value, hashed_key=hashed))
        large_refs = dict(leaf.large_refs)
        stale_large = large_refs.pop(key, None)
        serialized = sum(14 + len(it.key) + len(it.value) for it in items)
        if serialized <= self.block_capacity:
            self._rebuild(leaf, items, large_refs)
        else:
            self._split(leaf, items, large_refs)
        # Count only after the new structure is in place so a failed
        # reconstruction leaves the zone's accounting untouched.
        if not replaced:
            self._item_count += 1
        if stale_large is not None:
            self._item_count -= 1  # the compact copy replaces the large one

    def _put_staged(self, leaf: Block, key: bytes, value: bytes, hashed: int) -> None:
        """Write-combining put: stage in O(item); merge when the region fills.

        While a key sits staged, a stale copy may remain in the compressed
        container (or as a large ref) — reads are shadowed by the staging
        index and the flush scrubs the stale copy, so both copies are
        charged for memory and counted until the merge reconciles them.
        """
        entry_size = 14 + len(key) + len(value)
        if leaf.staged_bytes + entry_size <= self.append_region_bytes:
            old_bytes = leaf.memory_bytes
            is_new = leaf.stage_put(key, value, hashed)
            self.stats.staged_puts += 1
            self._recharge(old_bytes, leaf.memory_bytes)
            if is_new:
                self._item_count += 1
            return
        # Region full (or the entry alone exceeds it): one decode + one
        # compression merges the container, every staged entry, and the
        # incoming item — the amortisation the region exists to buy.
        if self.verify_checksums and not leaf.staged_checksum_ok():
            self.stats.staged_checksum_failures += 1
            replacement = self._quarantine(leaf)
            self._put_staged(replacement, key, value, hashed)
            return
        container = self._lookup_container(leaf)
        if container is None:
            # Damaged and quarantined; stage into the rebuilt empty slot.
            self._put_staged(self._trie.find_leaf(hashed), key, value, hashed)
            return
        if leaf.staged_index:
            self.stats.staging_flushes += 1
        newest = {it.key: it for it in leaf.staged_items()}
        newest[key] = KVItem(key=key, value=value, hashed_key=hashed)
        items = [it for it in decode_items(container) if it.key not in newest]
        items.extend(newest.values())
        large_refs = {
            k: v for k, v in leaf.large_refs.items() if k not in newest
        }
        old_total = leaf.item_count + leaf.staged_count + len(leaf.large_refs)
        serialized = sum(14 + len(it.key) + len(it.value) for it in items)
        if serialized <= self.block_capacity:
            self._rebuild(leaf, items, large_refs)
        else:
            self._split(leaf, items, large_refs)
        self._item_count += len(items) + len(large_refs) - old_total

    def _flush_staging(self, leaf: Block) -> Optional[Block]:
        """Merge ``leaf``'s staged entries into its compressed container.

        Returns the replacement leaf, or None when the merge could not
        preserve the data (staged CRC failure or damaged container — the
        block is quarantined) or the merge split the block into several
        leaves (callers re-find by hash when they need a specific one).
        """
        if not leaf.staged_index:
            if leaf.staged_buffer:
                # Only dead bytes remain (every staged key was deleted):
                # no merge needed, just reclaim the buffer in place.
                old_bytes = leaf.memory_bytes
                leaf.staged_buffer = bytearray()
                leaf.staged_checksum = 0
                self._recharge(old_bytes, leaf.memory_bytes)
            return leaf
        if self.verify_checksums and not leaf.staged_checksum_ok():
            self.stats.staged_checksum_failures += 1
            self._quarantine(leaf)
            return None
        container = self._lookup_container(leaf)
        if container is None:
            return None
        self.stats.staging_flushes += 1
        newest = {it.key: it for it in leaf.staged_items()}
        items = [it for it in decode_items(container) if it.key not in newest]
        items.extend(newest.values())
        large_refs = {
            k: v for k, v in leaf.large_refs.items() if k not in newest
        }
        old_total = leaf.item_count + leaf.staged_count + len(leaf.large_refs)
        serialized = sum(14 + len(it.key) + len(it.value) for it in items)
        if serialized <= self.block_capacity:
            replacement = self._rebuild(leaf, items, large_refs)
        else:
            self._split(leaf, items, large_refs)
            replacement = None
        self._item_count += len(items) + len(large_refs) - old_total
        return replacement

    def _put_large(self, leaf: Block, key: bytes, value: bytes, hashed: int) -> None:
        if key in leaf.staged_index:
            # Large items bypass the append region; when a staged copy of
            # this very key exists, flush first so it cannot shadow (or be
            # shadowed by) the large one.  Other staged keys ride through
            # the rebuild below untouched.
            self._flush_staging(leaf)
            leaf = self._trie.find_leaf(hashed)
        compressed, codec = self._compress_value(value)
        large = LargeItem(
            key=key,
            hashed_key=hashed,
            compressed=compressed,
            uncompressed_size=len(key) + len(value),
            codec=codec,
        )
        if leaf.maybe_contains(hashed) and key not in leaf.large_refs:
            # The key may exist compacted in the container: rebuild without
            # it so the item is not doubly stored.
            container = self._lookup_container(leaf)
            if container is None:
                # Quarantined: fall through to the rebuilt empty slot.
                leaf = self._trie.find_leaf(hashed)
            else:
                items = [it for it in decode_items(container) if it.key != key]
                was_present = (
                    len(items) < leaf.item_count or key in leaf.large_refs
                )
                large_refs = dict(leaf.large_refs)
                large_refs[key] = large
                self._rebuild(leaf, items, large_refs, adopt_staging=True)
                if not was_present:
                    self._item_count += 1
                return
        if key not in leaf.large_refs:
            self._item_count += 1
        old_bytes = leaf.memory_bytes
        leaf.large_refs[key] = large
        leaf.content_filter.add(hashed)
        self._recharge(old_bytes, leaf.memory_bytes)

    def _rebuild(
        self,
        old: Block,
        items: List[KVItem],
        large_refs: Dict[bytes, LargeItem],
        adopt_staging: bool = False,
    ) -> Block:
        new = self._build_block(
            items, depth=old.depth, prefix=old.prefix, large_refs=large_refs
        )
        if adopt_staging and old.staged_index:
            new.adopt_staging(old)
        self._trie.replace_leaf(old, new)
        self._splice_replace(old, [new])
        self._recharge(old.memory_bytes, new.memory_bytes)
        self._invalidate_cached(old)
        return new

    def _rebuild_from_spans(
        self,
        old: Block,
        container: bytes,
        spans: List[Tuple[int, int, int]],
        large_refs: Dict[bytes, LargeItem],
        adopt_staging: bool = False,
    ) -> Block:
        """Rebuild ``old`` from entry spans of its decoded ``container``.

        The sweep's batched path: survivors are sliced, not decoded and
        re-encoded, producing a byte-identical container in one pass.
        Codec faults degrade through the same fallback chain as
        :meth:`_build_block`.
        """
        for _attempt in range(4 * (len(self._fallbacks) + 1)):
            try:
                new = Block.from_sorted_entries(
                    container,
                    spans,
                    self.compressor,
                    depth=old.depth,
                    prefix=old.prefix,
                    large_refs=large_refs,
                    keep_container=self.decompressed_cache_blocks > 0,
                )
            except CodecError:
                self._note_codec_failure()
                continue
            self._codec_strikes = 0
            self.stats.compressions += 1
            self._cache_store(new)
            if adopt_staging and old.staged_index:
                new.adopt_staging(old)
            self._trie.replace_leaf(old, new)
            self._splice_replace(old, [new])
            self._recharge(old.memory_bytes, new.memory_bytes)
            self._invalidate_cached(old)
            return new
        raise CodecError("compression failed with every codec in the chain")

    def _split(
        self,
        old: Block,
        items: List[KVItem],
        large_refs: Dict[bytes, LargeItem],
    ) -> None:
        """Split ``old`` into two children by the next hashed-key bit.

        If a child is itself overloaded (possible only under pathological
        hash clustering), it is built anyway and immediately split again —
        each step is a legitimate binary trie split, as in Figure 3.
        Splitting stops at the trie's depth cap: keys whose hashes agree
        on the first 48 bits cannot be separated, and their block simply
        stays oversized (correct, merely less efficient).
        """
        from repro.zzone.trie import MAX_DEPTH

        if old.depth >= MAX_DEPTH:
            self._rebuild(old, items, large_refs)
            return
        trie_before = self._trie.memory_bytes
        bit_shift = 63 - old.depth
        left_items = [it for it in items if not (it.hashed_key >> bit_shift) & 1]
        right_items = [it for it in items if (it.hashed_key >> bit_shift) & 1]
        left_large = {
            k: v for k, v in large_refs.items() if not (v.hashed_key >> bit_shift) & 1
        }
        right_large = {
            k: v for k, v in large_refs.items() if (v.hashed_key >> bit_shift) & 1
        }
        left = self._build_block(
            left_items,
            depth=old.depth + 1,
            prefix=old.prefix * 2,
            large_refs=left_large,
        )
        right = self._build_block(
            right_items,
            depth=old.depth + 1,
            prefix=old.prefix * 2 + 1,
            large_refs=right_large,
        )
        self.stats.splits += 1
        self._trie.split_leaf(old, left, right)
        self._splice_replace(old, [left, right])
        self._invalidate_cached(old)
        self._recharge(
            old.memory_bytes + trie_before,
            left.memory_bytes + right.memory_bytes + self._trie.memory_bytes,
        )
        for child, child_items, child_large in (
            (left, left_items, left_large),
            (right, right_items, right_large),
        ):
            if sum(14 + len(it.key) + len(it.value) for it in child_items) > self.block_capacity:
                self._split(child, child_items, child_large)

    # -- removal internals ---------------------------------------------------------

    def _remove_from_block(self, leaf: Block, key: bytes, hashed: int) -> bool:
        staged_removed = False
        if key in leaf.staged_index:
            # Unindex the staged copy without a flush: its bytes stay in
            # the buffer as dead space (the next merge drops them, and the
            # running CRC still covers the whole buffer), so the append
            # region keeps its O(item) put amortisation.  A stale shadow
            # of the key in the compressed container or the large refs is
            # scrubbed below.
            del leaf.staged_index[key]
            self._item_count -= 1
            staged_removed = True
        if key in leaf.large_refs:
            large_refs = dict(leaf.large_refs)
            del large_refs[key]
            container = self._lookup_container(leaf)
            if container is None:
                # Quarantined whole; the key is gone either way.
                return staged_removed
            items = decode_items(container)
            self._rebuild(leaf, items, large_refs, adopt_staging=True)
            self._item_count -= 1
            return True
        container = self._lookup_container(leaf)
        if container is None:
            return staged_removed
        items = decode_items(container)
        remaining = [it for it in items if it.key != key]
        if len(remaining) == len(items):
            if not staged_removed:
                self.stats.false_positives += 1
            return staged_removed
        self._rebuild(leaf, remaining, dict(leaf.large_refs), adopt_staging=True)
        self._item_count -= 1
        return True

    # -- replacement (§3.2) -----------------------------------------------------------

    def _execute_pending_removals(self) -> None:
        now = self.clock.now()
        due = [key for key, (_h, when) in self._pending_removals.items() if when <= now]
        for key in due:
            hashed, _when = self._pending_removals.pop(key)
            leaf = self._trie.find_leaf(hashed)
            if leaf is not None and leaf.maybe_contains(hashed):
                if self._remove_from_block(leaf, key, hashed):
                    self.stats.pending_removals_executed += 1

    def _evict_to_fit(self) -> None:
        if self._used <= self.capacity:
            return
        # Graceful degradation under severe pressure (e.g. an injected
        # capacity squeeze): skip the Access Filter's protection outright
        # and force-sweep until the zone fits again.
        emergency = self._used - self.capacity > int(self.capacity * EMERGENCY_OVERAGE)
        if emergency:
            self.stats.emergency_sweeps += 1
        self._execute_pending_removals()
        visits_without_progress = 0
        while self._used > self.capacity:
            block = self._hand
            if block is None:
                return
            self._hand = block.next_block
            self.stats.sweep_visits += 1
            force = emergency or visits_without_progress > self._trie.block_count
            progressed = self._sweep_block(block, force=force)
            progressed = self._maybe_merge_empty(block) or progressed
            if progressed:
                visits_without_progress = 0
            else:
                visits_without_progress += 1
                if visits_without_progress > 2 * self._trie.block_count + 4:
                    # A full forced cycle freed nothing: the zone is at
                    # its structural floor (metadata of empty blocks and
                    # the index itself).  Stop rather than spin.
                    return

    def _maybe_merge_empty(self, block: Block) -> bool:
        """Collapse empty sibling leaves to reclaim their metadata.

        Repeats up the trie while the merged parent's sibling is also an
        empty leaf.  Returns whether any merge happened.
        """
        merged = False
        while (
            block.depth > 0
            and block.item_count == 0
            and not block.large_refs
            and not block.staged_index
        ):
            sibling_prefix = block.prefix ^ 1
            sibling = self._trie.get_leaf(block.depth, sibling_prefix)
            if (
                sibling is None
                or sibling.item_count != 0
                or sibling.large_refs
                or sibling.staged_index
            ):
                return merged
            left, right = (
                (block, sibling) if block.prefix % 2 == 0 else (sibling, block)
            )
            parent = self._build_block(
                [], depth=block.depth - 1, prefix=block.prefix // 2
            )
            trie_before = self._trie.memory_bytes
            self._trie.merge_leaves(left, right, parent)
            self._splice_remove(right)
            self._splice_replace(left, [parent])
            self._recharge(
                left.memory_bytes + right.memory_bytes + trie_before,
                parent.memory_bytes + self._trie.memory_bytes,
            )
            self._invalidate_cached(left)
            self._invalidate_cached(right)
            merged = True
            block = parent
        return merged

    def _sweep_block(self, block: Block, force: bool = False) -> bool:
        """Evict from one block; returns whether any bytes were freed.

        Victims are a random half of the items not recorded in the Access
        Filter; the filter is cleared before moving on so that the next
        visit sees only fresh accesses (§3.2).  ``force`` overrides the
        filter when a full sweep cycle made no progress (pathological
        all-hot zone).
        """
        freed = False
        if block.staged_index and force:
            # Emergency pressure merges the append region outright:
            # compressing the raw staged bytes frees their overhead and
            # leaves a plain compressed block for the forced re-visit.
            self._flush_staging(block)
            return True
        # A non-forced sweep leaves the append region alone: staged
        # entries are by definition the block's most recently written
        # items, exactly what CLOCK's reference pass protects.  Eviction
        # targets the compressed container, and every rebuild below
        # carries the staging area over (``adopt_staging=True``) so the
        # region keeps its O(item) put amortisation under cache pressure.
        # Verify the container before touching any accounting: a damaged
        # block is quarantined whole, which frees its bytes — progress.
        container = None
        if block.item_count > 0:
            container = self._lookup_container(block)
            if container is None:
                return True
        # Large refs behave like one-item blocks with a reference bit.
        hot_large = {}
        for key, large in block.large_refs.items():
            if large.accessed and self.use_access_filter and not force:
                large.accessed = False
                hot_large[key] = large
            else:
                self.stats.evicted_items += 1
                self.stats.evicted_bytes += large.uncompressed_size
                self._item_count -= 1
                freed = True
        if block.item_count > 0:
            # Batched path: one header scan yields every entry's span, the
            # survivors are sliced straight into the replacement container
            # — no per-item decode/re-encode.  Candidate selection and the
            # RNG draw are identical to the per-item path, so sweep
            # behaviour (and the committed experiment outputs) do not
            # depend on which path built the block.
            spans = entry_spans(container)
            if force or not self.use_access_filter:
                candidates = list(range(len(spans)))
            else:
                access_filter = block.access_filter
                candidates = [
                    position
                    for position, (hashed, _start, _end) in enumerate(spans)
                    if hashed not in access_filter
                ]
            if candidates:
                if self.append_region_bytes > 0:
                    # Fast-path sweeps cut deeper: every filter-cold item
                    # goes, so one rebuild (one compression) frees twice
                    # the bytes and eviction episodes triggered by staged
                    # puts visit half as many blocks.  The random-half
                    # draw below stays the exclusive default behaviour —
                    # committed experiment outputs depend on its RNG
                    # stream.
                    victims = set(candidates)
                else:
                    victim_count = max(1, math.ceil(len(candidates) / 2))
                    victims = set(self._rng.sample(candidates, victim_count))
                survivor_spans = [
                    span
                    for position, span in enumerate(spans)
                    if position not in victims
                ]
                self.stats.evicted_items += len(victims)
                self.stats.evicted_bytes += sum(
                    spans[position][2] - spans[position][1] - 14
                    for position in victims
                )
                self._item_count -= len(victims)
                block.access_filter.clear()
                self._rebuild_from_spans(
                    block, container, survivor_spans, hot_large,
                    adopt_staging=True,
                )
                return True
            if len(hot_large) != len(block.large_refs):
                self._rebuild_from_spans(
                    block, container, spans, hot_large, adopt_staging=True
                )
                block.access_filter.clear()
                return True
        elif len(hot_large) != len(block.large_refs):
            old_bytes = block.memory_bytes
            block.large_refs = hot_large
            self._recharge(old_bytes, block.memory_bytes)
            return True
        block.access_filter.clear()
        if (
            not freed
            and block.staged_index
            and 2 * block.staged_bytes >= self.append_region_bytes
        ):
            # Nothing in the container was evictable (all hot, or empty)
            # and the region holds enough raw bytes that compressing them
            # frees real memory: merge.  A near-empty region is left alone
            # — flushing it would reset the put amortisation for crumbs.
            self._flush_staging(block)
            return True
        return freed

    # -- accounting and invariants ----------------------------------------------------

    def items(self):
        """Iterate resident (key, value) pairs (decompressing blocks).

        Accounting-neutral: used by snapshots and debugging, so the
        decompressions are *not* charged to the stats the performance
        model prices.  Damaged blocks found along the way are quarantined
        and skipped rather than crashing the iteration.
        """
        for leaf in list(self._trie.leaves()):
            if (
                leaf.staged_index
                and self.verify_checksums
                and not leaf.staged_checksum_ok()
            ):
                # Damaged staged bytes quarantine the whole block, same as
                # a damaged container — and before anything of the leaf is
                # yielded, so a snapshot never holds items the zone just
                # dropped.
                self.stats.staged_checksum_failures += 1
                self._quarantine(leaf)
                continue
            container = self._container_of(leaf, charge=False)
            if container is None:
                continue
            for item in decode_items(container):
                yield item.key, item.value
            for key, large in list(leaf.large_refs.items()):
                value = self._large_bytes(leaf, key, large, charge=False)
                if value is not None:
                    yield key, value
            # Staged entries last: a staged write is the newest version of
            # its key, so replaying this iteration in order (as snapshot
            # load does) lets it overwrite any stale shadow yielded above.
            for item in leaf.staged_items():
                yield item.key, item.value

    def memory_usage(self) -> Dict[str, int]:
        """Byte breakdown: compressed items, staged items, metadata, index."""
        stored = 0
        metadata = 0
        uncompressed = 0
        staged = 0
        for leaf in self._trie.leaves():
            stored += leaf.stored_bytes
            staged += leaf.staged_bytes
            metadata += (
                leaf.memory_bytes
                - leaf.stored_bytes
                - leaf.staged_bytes
                - sum(
                    ref.compressed.stored_size
                    for ref in leaf.large_refs.values()
                )
            )
            stored += sum(ref.compressed.stored_size for ref in leaf.large_refs.values())
            uncompressed += leaf.uncompressed_size + leaf.staged_bytes + sum(
                ref.uncompressed_size for ref in leaf.large_refs.values()
            )
        return {
            "compressed_items": stored,
            "uncompressed_items": uncompressed,
            "block_metadata": metadata,
            "staged_items": staged,
            "trie_index": self._trie.memory_bytes,
            "total": self._used,
        }

    def average_trie_probes(self) -> float:
        return self._trie.average_probes()

    def check_invariants(self) -> None:
        """Verify accounting, ring integrity, and trie consistency."""
        total = self._trie.memory_bytes
        item_total = 0
        for leaf in self._trie.leaves():
            total += leaf.memory_bytes
            item_total += leaf.item_count + leaf.staged_count + len(leaf.large_refs)
        if total != self._used:
            raise AssertionError(
                f"used_bytes={self._used} but structures sum to {total}"
            )
        if item_total != self._item_count:
            raise AssertionError(
                f"item_count={self._item_count} but leaves hold {item_total}"
            )
        # Ring must contain exactly the trie's leaves.
        ring = []
        node = self._hand
        for _ in range(self._trie.block_count):
            ring.append(node)
            node = node.next_block
        if node is not self._hand or len(set(map(id, ring))) != self._trie.block_count:
            raise AssertionError("sweep ring out of sync with trie leaves")
