"""The Z-zone manager (§3.1–3.3).

Owns the block trie, the circular sweep list, the deferred-removal queue,
and the byte budget.  All mutation goes through block reconstruction —
"writing a new item into a block always leads to its reconstruction" — and
every reconstruction is charged to the compression/decompression counters
that the performance model and the adaptive controller consume.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.clock import VirtualClock
from repro.common.errors import ItemTooLargeError
from repro.common.hashing import hash_key
from repro.common.records import KVItem
from repro.common.rng import make_rng
from repro.compression.base import Compressor
from repro.compression.zlibc import ZlibCompressor
from repro.zzone.block import Block, LargeItem
from repro.zzone.trie import BlockTrie

DEFAULT_BLOCK_CAPACITY = 2048


@dataclass
class ZZoneStats:
    """Operation counters; the cost model prices these."""

    gets: int = 0
    hits: int = 0
    misses: int = 0
    #: GETs/DELETEs answered "absent" by a Content Filter alone.
    filter_skips: int = 0
    #: Filter said maybe but the block scan came up empty.
    false_positives: int = 0
    decompressions: int = 0
    compressions: int = 0
    puts: int = 0
    deletes: int = 0
    evicted_items: int = 0
    evicted_bytes: int = 0
    splits: int = 0
    sweep_visits: int = 0
    pending_removals_executed: int = 0
    pending_removals_merged: int = 0

    @property
    def expensive_ops(self) -> int:
        """Operations involving block (de)compression (§3.3.1's metric)."""
        return self.decompressions + self.compressions


class ZZone:
    """Compressed cold partition with sweep replacement."""

    def __init__(
        self,
        capacity: int,
        compressor: Optional[Compressor] = None,
        block_capacity: int = DEFAULT_BLOCK_CAPACITY,
        clock: Optional[VirtualClock] = None,
        seed: int = 0,
        use_content_filter: bool = True,
        use_access_filter: bool = True,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if block_capacity < 64:
            raise ValueError(f"block_capacity must be >= 64, got {block_capacity}")
        self.capacity = capacity
        self.block_capacity = block_capacity
        #: Ablation switches: without the Content Filter every absent-key
        #: GET/DELETE decompresses its block (Figure 13's "no filter"
        #: baseline); without the Access Filter the sweep picks victims
        #: blindly.
        self.use_content_filter = use_content_filter
        self.use_access_filter = use_access_filter
        self.compressor = compressor if compressor is not None else ZlibCompressor()
        self.clock = clock if clock is not None else VirtualClock()
        self.stats = ZZoneStats()
        self._rng = make_rng(seed, "zzone-sweep")
        self._trie = BlockTrie()
        self._used = 0
        self._item_count = 0
        self._hand: Optional[Block] = None
        #: key -> (hashed_key, earliest execution time); §3.3.2's postponed
        #: removals of stale versions after a SET hit the N-zone.
        self._pending_removals: Dict[bytes, Tuple[int, float]] = {}
        root = Block.build([], self.compressor)
        self.stats.compressions += 1
        self._trie.insert_root(root)
        self._link_initial(root)
        self._used = root.memory_bytes + self._trie.memory_bytes

    # -- circular sweep list --------------------------------------------------

    def _link_initial(self, block: Block) -> None:
        block.next_block = block
        block.prev_block = block
        self._hand = block

    def _splice_remove(self, block: Block) -> None:
        """Unlink ``block`` from the ring (it must not be the only node)."""
        if block.next_block is block:
            raise ValueError("cannot remove the last ring node")
        block.prev_block.next_block = block.next_block
        block.next_block.prev_block = block.prev_block
        if self._hand is block:
            self._hand = block.next_block

    def _splice_replace(self, old: Block, replacements: List[Block]) -> None:
        """Replace ``old`` in the ring with one or two blocks."""
        first, last = replacements[0], replacements[-1]
        if old.next_block is old:
            # Single-node ring.
            prev_node, next_node = last, first
        else:
            prev_node, next_node = old.prev_block, old.next_block
        prev_node.next_block = first
        first.prev_block = prev_node
        last.next_block = next_node
        next_node.prev_block = last
        if len(replacements) == 2:
            first.next_block = last
            last.prev_block = first
        if self._hand is old:
            self._hand = first

    # -- byte accounting -------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def item_count(self) -> int:
        return self._item_count

    @property
    def block_count(self) -> int:
        return self._trie.block_count

    def resize(self, capacity: int) -> None:
        """Change the byte budget; shrinking evicts immediately."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._evict_to_fit()

    def _recharge(self, old_bytes: int, new_bytes: int) -> None:
        self._used += new_bytes - old_bytes

    # -- core operations --------------------------------------------------------

    def get(self, key: bytes, hashed: Optional[int] = None) -> Optional[Tuple[bytes, Optional[float]]]:
        """Look up ``key``; returns (value, reuse_time) or None.

        ``reuse_time`` is the gap since the item's recorded previous access
        (None on the first recorded access) — the input to the N-zone
        promotion rule (§3.3.2).
        """
        if hashed is None:
            hashed = hash_key(key)
        self.stats.gets += 1
        leaf = self._trie.find_leaf(hashed)
        if leaf is None:
            self.stats.misses += 1
            return None
        if self.use_content_filter and not leaf.maybe_contains(hashed):
            self.stats.filter_skips += 1
            self.stats.misses += 1
            return None
        large = leaf.large_refs.get(key)
        if large is not None:
            self.stats.decompressions += 1
            large.accessed = True
            reuse = leaf.record_get(hashed, self.clock.now())
            self.stats.hits += 1
            return self.compressor.decompress(large.compressed), reuse
        self.stats.decompressions += 1
        value = leaf.lookup(key, hashed, self.compressor)
        if value is None:
            # A decompression that found nothing: a filter false positive
            # when the filter is on, plain wasted work when it is off.
            self.stats.false_positives += 1
            self.stats.misses += 1
            return None
        reuse = leaf.record_get(hashed, self.clock.now())
        self.stats.hits += 1
        return value, reuse

    def maybe_contains(self, key: bytes, hashed: Optional[int] = None) -> bool:
        """Content-Filter-only membership check (no decompression)."""
        if hashed is None:
            hashed = hash_key(key)
        leaf = self._trie.find_leaf(hashed)
        return leaf is not None and leaf.maybe_contains(hashed)

    def put(self, key: bytes, value: bytes, hashed: Optional[int] = None) -> None:
        """Insert or replace an item (typically an N-zone eviction)."""
        if hashed is None:
            hashed = hash_key(key)
        item_size = len(key) + len(value)
        if item_size > self.capacity:
            raise ItemTooLargeError(key, item_size, self.capacity)
        self.stats.puts += 1
        # A put of the same key supersedes any postponed removal: the
        # paper's "removal and write operations are merged into one".
        if self._pending_removals.pop(key, None) is not None:
            self.stats.pending_removals_merged += 1
        leaf = self._trie.find_leaf(hashed)
        if item_size > self.block_capacity // 2:
            self._put_large(leaf, key, value, hashed)
        else:
            self._put_compact(leaf, key, value, hashed)
        self._evict_to_fit()

    def delete(self, key: bytes, hashed: Optional[int] = None) -> bool:
        """Remove ``key`` if present; filter-negative deletes are free."""
        if hashed is None:
            hashed = hash_key(key)
        self.stats.deletes += 1
        leaf = self._trie.find_leaf(hashed)
        if leaf is None:
            return False
        if self.use_content_filter and not leaf.maybe_contains(hashed):
            self.stats.filter_skips += 1
            return False
        self._pending_removals.pop(key, None)
        return self._remove_from_block(leaf, key, hashed)

    def schedule_removal(self, key: bytes, hashed: int, not_before: float) -> None:
        """Postpone removing a stale version until ``not_before`` (§3.3.2)."""
        if self.maybe_contains(key, hashed):
            self._pending_removals[key] = (hashed, not_before)

    # -- insertion internals ------------------------------------------------------

    def _put_compact(self, leaf: Block, key: bytes, value: bytes, hashed: int) -> None:
        self.stats.decompressions += 1
        items = leaf.items(self.compressor)
        replaced = False
        for position, existing in enumerate(items):
            if existing.key == key:
                items[position] = KVItem(key=key, value=value, hashed_key=hashed)
                replaced = True
                break
        if not replaced:
            items.append(KVItem(key=key, value=value, hashed_key=hashed))
            self._item_count += 1
        large_refs = dict(leaf.large_refs)
        stale_large = large_refs.pop(key, None)
        if stale_large is not None:
            self._item_count -= 1  # the compact copy replaces the large one
        serialized = sum(14 + len(it.key) + len(it.value) for it in items)
        if serialized <= self.block_capacity:
            self._rebuild(leaf, items, large_refs)
        else:
            self._split(leaf, items, large_refs)

    def _put_large(self, leaf: Block, key: bytes, value: bytes, hashed: int) -> None:
        compressed = self.compressor.compress(value)
        self.stats.compressions += 1
        large = LargeItem(
            key=key,
            hashed_key=hashed,
            compressed=compressed,
            uncompressed_size=len(key) + len(value),
        )
        if leaf.maybe_contains(hashed) and key not in leaf.large_refs:
            # The key may exist compacted in the container: rebuild without
            # it so the item is not doubly stored.
            self.stats.decompressions += 1
            items = [it for it in leaf.items(self.compressor) if it.key != key]
            large_refs = dict(leaf.large_refs)
            was_present = (
                len(items) < leaf.item_count or key in leaf.large_refs
            )
            large_refs[key] = large
            if not was_present:
                self._item_count += 1
            self._rebuild(leaf, items, large_refs)
            return
        if key not in leaf.large_refs:
            self._item_count += 1
        old_bytes = leaf.memory_bytes
        leaf.large_refs[key] = large
        leaf.content_filter.add(hashed)
        self._recharge(old_bytes, leaf.memory_bytes)

    def _rebuild(
        self,
        old: Block,
        items: List[KVItem],
        large_refs: Dict[bytes, LargeItem],
    ) -> None:
        new = Block.build(
            items,
            self.compressor,
            depth=old.depth,
            prefix=old.prefix,
            large_refs=large_refs,
        )
        self.stats.compressions += 1
        self._trie.replace_leaf(old, new)
        self._splice_replace(old, [new])
        self._recharge(old.memory_bytes, new.memory_bytes)

    def _split(
        self,
        old: Block,
        items: List[KVItem],
        large_refs: Dict[bytes, LargeItem],
    ) -> None:
        """Split ``old`` into two children by the next hashed-key bit.

        If a child is itself overloaded (possible only under pathological
        hash clustering), it is built anyway and immediately split again —
        each step is a legitimate binary trie split, as in Figure 3.
        Splitting stops at the trie's depth cap: keys whose hashes agree
        on the first 48 bits cannot be separated, and their block simply
        stays oversized (correct, merely less efficient).
        """
        from repro.zzone.trie import MAX_DEPTH

        if old.depth >= MAX_DEPTH:
            self._rebuild(old, items, large_refs)
            return
        trie_before = self._trie.memory_bytes
        bit_shift = 63 - old.depth
        left_items = [it for it in items if not (it.hashed_key >> bit_shift) & 1]
        right_items = [it for it in items if (it.hashed_key >> bit_shift) & 1]
        left_large = {
            k: v for k, v in large_refs.items() if not (v.hashed_key >> bit_shift) & 1
        }
        right_large = {
            k: v for k, v in large_refs.items() if (v.hashed_key >> bit_shift) & 1
        }
        left = Block.build(
            left_items,
            self.compressor,
            depth=old.depth + 1,
            prefix=old.prefix * 2,
            large_refs=left_large,
        )
        right = Block.build(
            right_items,
            self.compressor,
            depth=old.depth + 1,
            prefix=old.prefix * 2 + 1,
            large_refs=right_large,
        )
        self.stats.compressions += 2
        self.stats.splits += 1
        self._trie.split_leaf(old, left, right)
        self._splice_replace(old, [left, right])
        self._recharge(
            old.memory_bytes + trie_before,
            left.memory_bytes + right.memory_bytes + self._trie.memory_bytes,
        )
        for child, child_items, child_large in (
            (left, left_items, left_large),
            (right, right_items, right_large),
        ):
            if sum(14 + len(it.key) + len(it.value) for it in child_items) > self.block_capacity:
                self._split(child, child_items, child_large)

    # -- removal internals ---------------------------------------------------------

    def _remove_from_block(self, leaf: Block, key: bytes, hashed: int) -> bool:
        if key in leaf.large_refs:
            large_refs = dict(leaf.large_refs)
            del large_refs[key]
            self.stats.decompressions += 1
            items = leaf.items(self.compressor)
            self._rebuild(leaf, items, large_refs)
            self._item_count -= 1
            return True
        self.stats.decompressions += 1
        items = leaf.items(self.compressor)
        remaining = [it for it in items if it.key != key]
        if len(remaining) == len(items):
            self.stats.false_positives += 1
            return False
        self._rebuild(leaf, remaining, dict(leaf.large_refs))
        self._item_count -= 1
        return True

    # -- replacement (§3.2) -----------------------------------------------------------

    def _execute_pending_removals(self) -> None:
        now = self.clock.now()
        due = [key for key, (_h, when) in self._pending_removals.items() if when <= now]
        for key in due:
            hashed, _when = self._pending_removals.pop(key)
            leaf = self._trie.find_leaf(hashed)
            if leaf is not None and leaf.maybe_contains(hashed):
                if self._remove_from_block(leaf, key, hashed):
                    self.stats.pending_removals_executed += 1

    def _evict_to_fit(self) -> None:
        if self._used <= self.capacity:
            return
        self._execute_pending_removals()
        visits_without_progress = 0
        while self._used > self.capacity:
            block = self._hand
            if block is None:
                return
            self._hand = block.next_block
            self.stats.sweep_visits += 1
            force = visits_without_progress > self._trie.block_count
            progressed = self._sweep_block(block, force=force)
            progressed = self._maybe_merge_empty(block) or progressed
            if progressed:
                visits_without_progress = 0
            else:
                visits_without_progress += 1
                if visits_without_progress > 2 * self._trie.block_count + 4:
                    # A full forced cycle freed nothing: the zone is at
                    # its structural floor (metadata of empty blocks and
                    # the index itself).  Stop rather than spin.
                    return

    def _maybe_merge_empty(self, block: Block) -> bool:
        """Collapse empty sibling leaves to reclaim their metadata.

        Repeats up the trie while the merged parent's sibling is also an
        empty leaf.  Returns whether any merge happened.
        """
        merged = False
        while (
            block.depth > 0
            and block.item_count == 0
            and not block.large_refs
        ):
            sibling_prefix = block.prefix ^ 1
            sibling = self._trie.get_leaf(block.depth, sibling_prefix)
            if (
                sibling is None
                or sibling.item_count != 0
                or sibling.large_refs
            ):
                return merged
            left, right = (
                (block, sibling) if block.prefix % 2 == 0 else (sibling, block)
            )
            parent = Block.build(
                [], self.compressor, depth=block.depth - 1, prefix=block.prefix // 2
            )
            self.stats.compressions += 1
            trie_before = self._trie.memory_bytes
            self._trie.merge_leaves(left, right, parent)
            self._splice_remove(right)
            self._splice_replace(left, [parent])
            self._recharge(
                left.memory_bytes + right.memory_bytes + trie_before,
                parent.memory_bytes + self._trie.memory_bytes,
            )
            merged = True
            block = parent
        return merged

    def _sweep_block(self, block: Block, force: bool = False) -> bool:
        """Evict from one block; returns whether any bytes were freed.

        Victims are a random half of the items not recorded in the Access
        Filter; the filter is cleared before moving on so that the next
        visit sees only fresh accesses (§3.2).  ``force`` overrides the
        filter when a full sweep cycle made no progress (pathological
        all-hot zone).
        """
        freed = False
        # Large refs behave like one-item blocks with a reference bit.
        hot_large = {}
        for key, large in block.large_refs.items():
            if large.accessed and self.use_access_filter and not force:
                large.accessed = False
                hot_large[key] = large
            else:
                self.stats.evicted_items += 1
                self.stats.evicted_bytes += large.uncompressed_size
                self._item_count -= 1
                freed = True
        if block.item_count > 0:
            self.stats.decompressions += 1
            items = block.items(self.compressor)
            if force or not self.use_access_filter:
                candidates = list(range(len(items)))
            else:
                candidates = [
                    position
                    for position, item in enumerate(items)
                    if item.hashed_key not in block.access_filter
                ]
            if candidates:
                victim_count = max(1, math.ceil(len(candidates) / 2))
                victims = set(self._rng.sample(candidates, victim_count))
                survivors = [
                    item
                    for position, item in enumerate(items)
                    if position not in victims
                ]
                self.stats.evicted_items += len(victims)
                self.stats.evicted_bytes += sum(
                    items[position].size for position in victims
                )
                self._item_count -= len(victims)
                block.access_filter.clear()
                self._rebuild(block, survivors, hot_large)
                return True
            if len(hot_large) != len(block.large_refs):
                self._rebuild(block, items, hot_large)
                block.access_filter.clear()
                return True
        elif len(hot_large) != len(block.large_refs):
            old_bytes = block.memory_bytes
            block.large_refs = hot_large
            self._recharge(old_bytes, block.memory_bytes)
            return True
        block.access_filter.clear()
        return freed

    # -- accounting and invariants ----------------------------------------------------

    def items(self):
        """Iterate resident (key, value) pairs (decompressing blocks).

        Accounting-neutral: used by snapshots and debugging, so the
        decompressions are *not* charged to the stats the performance
        model prices.
        """
        for leaf in list(self._trie.leaves()):
            for item in leaf.items(self.compressor):
                yield item.key, item.value
            for key, large in list(leaf.large_refs.items()):
                yield key, self.compressor.decompress(large.compressed)

    def memory_usage(self) -> Dict[str, int]:
        """Byte breakdown: compressed items, metadata, index."""
        stored = 0
        metadata = 0
        uncompressed = 0
        for leaf in self._trie.leaves():
            stored += leaf.stored_bytes
            metadata += leaf.memory_bytes - leaf.stored_bytes - sum(
                ref.compressed.stored_size for ref in leaf.large_refs.values()
            )
            stored += sum(ref.compressed.stored_size for ref in leaf.large_refs.values())
            uncompressed += leaf.uncompressed_size + sum(
                ref.uncompressed_size for ref in leaf.large_refs.values()
            )
        return {
            "compressed_items": stored,
            "uncompressed_items": uncompressed,
            "block_metadata": metadata,
            "trie_index": self._trie.memory_bytes,
            "total": self._used,
        }

    def average_trie_probes(self) -> float:
        return self._trie.average_probes()

    def check_invariants(self) -> None:
        """Verify accounting, ring integrity, and trie consistency."""
        total = self._trie.memory_bytes
        item_total = 0
        for leaf in self._trie.leaves():
            total += leaf.memory_bytes
            item_total += leaf.item_count + len(leaf.large_refs)
        if total != self._used:
            raise AssertionError(
                f"used_bytes={self._used} but structures sum to {total}"
            )
        if item_total != self._item_count:
            raise AssertionError(
                f"item_count={self._item_count} but leaves hold {item_total}"
            )
        # Ring must contain exactly the trie's leaves.
        ring = []
        node = self._hand
        for _ in range(self._trie.block_count):
            ring.append(node)
            node = node.next_block
        if node is not self._hand or len(set(map(id, ring))) != self._trie.block_count:
            raise AssertionError("sweep ring out of sync with trie leaves")
