"""16-byte Bloom filters (the paper's Content Filter and Access Filter).

Sized per §3.2: a block holds roughly 20 small items, and a 128-bit filter
with 4 probes keeps the false-positive ratio around the paper's observed
~5 % at that load.

Probes are derived from the item's 64-bit placement hash by double hashing
(Kirsch & Mitzenmacher), so no extra hashing of the key bytes is needed on
the hot path.
"""

from __future__ import annotations

from typing import Dict

SIZE_BYTES = 16
_BITS = SIZE_BYTES * 8
_NUM_PROBES = 4

#: Memo of hashed key -> OR-mask of its four probe bits.  Every block
#: rebuild re-adds the same resident keys to a fresh Content Filter, so
#: the probe positions for a key are recomputed constantly; the mask is a
#: pure function of the hashed key and can be derived once.  Cleared
#: wholesale when full so unbounded key churn cannot grow it.
_MASK_CACHE: Dict[int, int] = {}
_MASK_CACHE_LIMIT = 1 << 17


def _probe_mask(hashed_key: int) -> int:
    mask = _MASK_CACHE.get(hashed_key)
    if mask is None:
        h1 = hashed_key & 0xFFFFFFFF
        h2 = (hashed_key >> 32) | 1  # odd step so probes cycle all bits
        mask = 0
        for i in range(_NUM_PROBES):
            mask |= 1 << ((h1 + i * h2) % _BITS)
        if len(_MASK_CACHE) >= _MASK_CACHE_LIMIT:
            _MASK_CACHE.clear()
        _MASK_CACHE[hashed_key] = mask
    return mask


class Bloom128:
    """A 128-bit Bloom filter over 64-bit hashed keys."""

    __slots__ = ("_bits",)

    def __init__(self) -> None:
        self._bits = 0

    def add(self, hashed_key: int) -> None:
        """Record ``hashed_key`` in the filter."""
        self._bits |= _probe_mask(hashed_key)

    def __contains__(self, hashed_key: int) -> bool:
        mask = _probe_mask(hashed_key)
        return self._bits & mask == mask

    def clear(self) -> None:
        """Reset the filter (the sweep clears Access Filters, §3.2)."""
        self._bits = 0

    @property
    def bit_count(self) -> int:
        """Number of set bits (for load/FP diagnostics)."""
        return bin(self._bits).count("1")

    def false_positive_rate(self) -> float:
        """Estimated FP probability at the current load."""
        load = self.bit_count / _BITS
        return load**_NUM_PROBES

    @property
    def memory_bytes(self) -> int:
        """Bytes this filter is charged in the cache's accounting."""
        return SIZE_BYTES
