"""Ring-routed client: one cache namespace over N independent servers.

A :class:`ClusterClient` fronts N single-node servers (each a plain
``cli serve`` process — no inter-node protocol) with the consistent-hash
ring from :mod:`repro.cluster.ring`.  Every key has exactly one owner;
the client routes each operation there over that node's own pooled
:class:`~repro.server.client.MemcacheClient` (deadlines, jittered
retry, pool recycling all inherited).

``get_many`` splits the request into per-node multigets, issues them
**concurrently**, and reassembles the found values — callers see one
logical multiget whose latency is the slowest involved node, not the
sum.  Order is preserved where it matters: each node receives its keys
in the caller's relative order, and the merged dict is keyed, so
reassembly is order-independent by construction.

When a node is down the behaviour is the caller's policy:

* ``on_node_down="error"`` (default) — reads raise
  :class:`~repro.common.errors.NodeDownError` carrying the node id, so
  a harness can distinguish "cache miss" from "shard unreachable".
* ``on_node_down="miss"`` — reads on the dead node's keys degrade to
  misses (the memcached deployment posture: a dead shard is a cold
  shard) and ``node_down_misses`` counts them.

Writes always raise: degrading a SET/DELETE to a no-op would silently
drop acknowledged state, which no policy should permit.

``merged_stats`` sums the numeric stats of every reachable node (same
summation discipline as :func:`repro.metrics.registry.merge_snapshots`)
and reports ``cluster_nodes``/``cluster_nodes_up`` alongside.
"""

from __future__ import annotations

import asyncio
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.errors import NodeDownError, ProtocolError, ServingError
from repro.metrics.registry import merge_snapshots
from repro.server.client import MemcacheClient, RetryPolicy

Address = Tuple[str, int]

#: Conditions that mean "the node is unreachable or refusing", and the
#: on_node_down policy applies.  ProtocolError (a ServingError subclass)
#: is re-raised before the policy applies: a malformed exchange is a
#: bug, not an outage, and degrading it to a miss would mask it.
_NODE_DOWN_ERRORS = (
    ConnectionError,
    OSError,
    EOFError,
    asyncio.IncompleteReadError,
    ServingError,
)


def _reraise_bugs(exc: BaseException) -> None:
    if isinstance(exc, ProtocolError):
        raise exc


class ClusterClient:
    """Consistent-hash routing over independent cache nodes."""

    def __init__(
        self,
        nodes: Dict[str, Address],
        *,
        vnodes: int = 64,
        on_node_down: str = "error",
        pool_size: int = 2,
        deadline: float = 2.0,
        retry: Optional[RetryPolicy] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        from repro.cluster.ring import HashRing

        if not nodes:
            raise ValueError("need at least one node")
        if on_node_down not in ("error", "miss"):
            raise ValueError(
                f"on_node_down must be 'error' or 'miss', got {on_node_down!r}"
            )
        self.on_node_down = on_node_down
        self.ring = HashRing(sorted(nodes), vnodes=vnodes)
        rng = rng if rng is not None else random.Random()
        self._clients: Dict[str, MemcacheClient] = {
            node_id: MemcacheClient(
                host=host,
                port=port,
                pool_size=pool_size,
                deadline=deadline,
                retry=retry,
                rng=rng,
            )
            for node_id, (host, port) in nodes.items()
        }
        #: Observability for tests and the chaos harness.
        self.node_down_misses = 0
        self.per_node_requests: Dict[str, int] = {
            node_id: 0 for node_id in nodes
        }

    # -- topology --------------------------------------------------------------

    @property
    def node_ids(self) -> List[str]:
        return sorted(self._clients)

    def node_for(self, key: bytes) -> str:
        """The id of the node this client would route ``key`` to."""
        return self.ring.node_for(key)

    def client_for(self, node_id: str) -> MemcacheClient:
        """The underlying per-node client (chaos probes use this)."""
        return self._clients[node_id]

    async def close(self) -> None:
        for client in self._clients.values():
            await client.close()

    # -- reads -----------------------------------------------------------------

    async def get(self, key: bytes) -> Optional[bytes]:
        values = await self.get_many([key])
        return values.get(key)

    async def get_many(self, keys: Sequence[bytes]) -> Dict[bytes, bytes]:
        """Multiget across shards; absent keys are missing from the result."""
        if not keys:
            return {}
        groups = self.ring.partition(keys)

        async def fetch(node_id: str, node_keys: List[bytes]):
            self.per_node_requests[node_id] += 1
            try:
                return await self._clients[node_id].get_many(node_keys)
            except _NODE_DOWN_ERRORS as exc:
                _reraise_bugs(exc)
                if self.on_node_down == "miss":
                    self.node_down_misses += len(node_keys)
                    return {}
                raise NodeDownError(
                    f"node {node_id} unreachable for {len(node_keys)} "
                    f"key(s): {exc}"
                ) from exc

        ordered = sorted(groups)  # deterministic task order per member set
        results = await asyncio.gather(
            *(fetch(node_id, groups[node_id]) for node_id in ordered)
        )
        merged: Dict[bytes, bytes] = {}
        for per_node in results:
            merged.update(per_node)
        return merged

    async def gets(self, key: bytes) -> Optional[Tuple[bytes, int]]:
        return await self._route_read(key, lambda c: c.gets(key))

    async def get_full(self, key: bytes) -> Optional[Tuple[bytes, int]]:
        return await self._route_read(key, lambda c: c.get_full(key))

    async def _route_read(self, key: bytes, op):
        node_id = self.ring.node_for(key)
        self.per_node_requests[node_id] += 1
        try:
            return await op(self._clients[node_id])
        except _NODE_DOWN_ERRORS as exc:
            _reraise_bugs(exc)
            if self.on_node_down == "miss":
                self.node_down_misses += 1
                return None
            raise NodeDownError(f"node {node_id} unreachable: {exc}") from exc

    # -- writes (never degraded) -----------------------------------------------

    async def set(
        self, key: bytes, value: bytes, ttl: float = 0.0, flags: int = 0
    ) -> bool:
        node_id = self.ring.node_for(key)
        self.per_node_requests[node_id] += 1
        try:
            return await self._clients[node_id].set(key, value, ttl, flags)
        except _NODE_DOWN_ERRORS as exc:
            _reraise_bugs(exc)
            raise NodeDownError(f"node {node_id} unreachable: {exc}") from exc

    async def cas(
        self,
        key: bytes,
        value: bytes,
        token: int,
        ttl: float = 0.0,
        flags: int = 0,
    ) -> Optional[bool]:
        node_id = self.ring.node_for(key)
        self.per_node_requests[node_id] += 1
        try:
            return await self._clients[node_id].cas(key, value, token, ttl, flags)
        except _NODE_DOWN_ERRORS as exc:
            _reraise_bugs(exc)
            raise NodeDownError(f"node {node_id} unreachable: {exc}") from exc

    async def delete(self, key: bytes) -> bool:
        node_id = self.ring.node_for(key)
        self.per_node_requests[node_id] += 1
        try:
            return await self._clients[node_id].delete(key)
        except _NODE_DOWN_ERRORS as exc:
            _reraise_bugs(exc)
            raise NodeDownError(f"node {node_id} unreachable: {exc}") from exc

    # -- aggregate observability -----------------------------------------------

    async def merged_stats(self) -> Dict[str, object]:
        """Sum every reachable node's numeric stats into one snapshot.

        String-valued stats (``server_state`` etc.) are dropped before
        merging — summation is only meaningful for numbers — and two
        synthetic gauges are added: ``cluster_nodes`` (configured) and
        ``cluster_nodes_up`` (answered this call).
        """
        snapshots: List[Dict[str, object]] = []
        nodes_up = 0
        for node_id in self.node_ids:
            try:
                raw = await self._clients[node_id].stats()
            except _NODE_DOWN_ERRORS:
                continue
            nodes_up += 1
            numeric: Dict[str, object] = {}
            for name, text in raw.items():
                try:
                    value = int(text)
                except ValueError:
                    try:
                        value = float(text)
                    except ValueError:
                        continue
                numeric[name] = value
            snapshots.append(numeric)
        merged = merge_snapshots(snapshots)
        merged["cluster_nodes"] = len(self._clients)
        merged["cluster_nodes_up"] = nodes_up
        return dict(sorted(merged.items()))
