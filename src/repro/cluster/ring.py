"""Consistent-hash ring: stable key ownership across a node set.

The ring places ``vnodes`` virtual points per node on a 64-bit circle
(the same BLAKE2b :func:`~repro.common.hashing.hash_key` the Z-zone trie
uses, so placement is stable across platforms and interpreter runs) and
routes each key to the first point clockwise from the key's hash.

Properties the cluster tier leans on:

* **Determinism** — ownership is a pure function of ``(node_ids,
  vnodes, key)``.  Two processes that agree on the member list agree on
  every key's owner; the chaos harness exploits this to assert that no
  key is ever served by two live nodes.
* **Minimal movement** — adding a node steals ~``1/(N+1)`` of the
  keyspace from the existing N nodes and nothing else moves (tested as
  a property: see ``tests/cluster/test_ring.py``).
* **Virtual nodes smooth the split** — with one point per node the
  largest arc is typically several times the smallest; 64+ points per
  node brings per-node load within a few percent of even.

Node ids are free-form strings (``"node0"``, ``"host:port"``); the ring
never interprets them beyond hashing ``b"<id>#<replica>"``.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple

from repro.common.hashing import hash_key

#: Default virtual points per node: enough that per-node keyspace share
#: is within a few percent of 1/N for small clusters.
DEFAULT_VNODES = 64


class HashRing:
    """Consistent-hash ring over string node ids."""

    def __init__(
        self, node_ids: Sequence[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = []
        self._hashes: List[int] = []
        self._nodes: Dict[str, List[int]] = {}
        for node_id in node_ids:
            self.add_node(node_id)

    # -- membership ------------------------------------------------------------

    def add_node(self, node_id: str) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node {node_id!r} already on the ring")
        hashes = []
        for replica in range(self.vnodes):
            point = hash_key(f"{node_id}#{replica}".encode("utf-8"))
            # A 64-bit collision between distinct (node, replica) labels
            # is ~impossible; ties are broken by node id so insertion
            # order can never change ownership.
            bisect.insort(self._points, (point, node_id))
            hashes.append(point)
        self._nodes[node_id] = hashes
        self._hashes = [point for point, _node in self._points]

    def remove_node(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise ValueError(f"node {node_id!r} not on the ring")
        del self._nodes[node_id]
        self._points = [
            (point, node) for point, node in self._points if node != node_id
        ]
        self._hashes = [point for point, _node in self._points]

    @property
    def node_ids(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    # -- routing ---------------------------------------------------------------

    def node_for(self, key: bytes) -> str:
        """Return the id of the node owning ``key``."""
        if not self._points:
            raise ValueError("ring has no nodes")
        index = bisect.bisect_right(self._hashes, hash_key(key))
        if index == len(self._points):
            index = 0  # wrap: first point clockwise from the top
        return self._points[index][1]

    def nodes_for(self, key: bytes, count: int) -> List[str]:
        """Return up to ``count`` *distinct* nodes clockwise from ``key``.

        The first entry is the owner; the rest are the natural fallback
        order a replica-placement or retry policy would use.
        """
        if not self._points:
            raise ValueError("ring has no nodes")
        count = min(count, len(self._nodes))
        index = bisect.bisect_right(self._hashes, hash_key(key))
        out: List[str] = []
        for step in range(len(self._points)):
            node = self._points[(index + step) % len(self._points)][1]
            if node not in out:
                out.append(node)
                if len(out) == count:
                    break
        return out

    def partition(self, keys: Sequence[bytes]) -> Dict[str, List[bytes]]:
        """Group ``keys`` by owning node, preserving per-node key order."""
        out: Dict[str, List[bytes]] = {}
        for key in keys:
            out.setdefault(self.node_for(key), []).append(key)
        return out

    def share_of(self, node_id: str) -> float:
        """Fraction of the 2**64 keyspace the node's arcs cover."""
        if node_id not in self._nodes:
            raise ValueError(f"node {node_id!r} not on the ring")
        if len(self._nodes) == 1:
            return 1.0
        total = 0
        span = 1 << 64
        for index, (point, node) in enumerate(self._points):
            if node != node_id:
                continue
            previous = self._points[index - 1][0]
            total += (point - previous) % span or span
        return total / span
