"""Multi-process cluster tier: consistent hashing over independent nodes.

Like a memcached fleet, the cluster has no inter-node protocol — each
node is a plain single-process server and all routing intelligence lives
in the client.  :mod:`repro.cluster.ring` provides the stable
consistent-hash ring (virtual nodes, minimal movement on membership
change); :mod:`repro.cluster.client` routes single-key operations to
their owner and fans multigets out per node; :mod:`repro.cluster.procs`
spawns and supervises N ``cli serve`` children with disjoint ports and
journal directories; :mod:`repro.cluster.chaos` is the node-kill
campaign that proves the whole arrangement degrades by arcs and
recovers without losing acknowledged writes.
"""

from repro.cluster.chaos import (
    ClusterChaosConfig,
    ClusterChaosReport,
    run_cluster_chaos,
)
from repro.cluster.client import ClusterClient
from repro.cluster.procs import (
    ClusterConfig,
    ClusterNodeConfig,
    ClusterSupervisor,
    NodeProcess,
)
from repro.cluster.ring import DEFAULT_VNODES, HashRing

__all__ = [
    "ClusterChaosConfig",
    "ClusterChaosReport",
    "ClusterClient",
    "ClusterConfig",
    "ClusterNodeConfig",
    "ClusterSupervisor",
    "DEFAULT_VNODES",
    "HashRing",
    "NodeProcess",
    "run_cluster_chaos",
]
