"""Cluster chaos: seeded node kills under oracle-verified load.

Each round drives seeded traffic through a ring-routed
:class:`~repro.cluster.client.ClusterClient` (``on_node_down="error"``
so "shard unreachable" is never confused with "cache miss"), SIGKILLs a
seeded-chosen node at a seeded op count, lets the drivers finish the
round against the degraded fleet, and then checks three contracts:

* **degraded-but-correct** — while the victim is down, a ``miss``-mode
  client must answer for every key owned by a *live* node exactly as the
  oracle predicts: the outage is confined to the victim's arc of the
  ring, and no surviving node returns wrong bytes.
* **recovery** — the victim restarts on its original port and journal
  directory; a full cluster-wide sweep then judges every key the oracle
  knows.  Wrong bytes are fatal everywhere; under ``fsync=always``,
  acknowledged-write loss and delete resurrection on the recovered node
  are fatal too.
* **ring stability** — for a deterministic key sample, every node is
  probed *directly*; a key answering from two live nodes, or from any
  node other than its ring owner, is fatal.  This is the property that
  makes the kill/restart cycle safe: ownership is a pure function of
  the member list, so a bounced node resumes exactly its old arc.

:meth:`ClusterChaosReport.render` prints only pure-function-of-seed
fields plus the (deterministically zero, when the system is correct)
violation counters, so CI byte-diffs two same-seed runs; everything
timing-dependent goes to stderr via ``render_metrics``.
"""

from __future__ import annotations

import asyncio
import random
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.client import ClusterClient
from repro.cluster.procs import ClusterConfig, ClusterSupervisor
from repro.common.errors import NodeDownError, ServingError
from repro.common.rng import derive_seed
from repro.server.crash import _Oracle, _tally
from repro.server.loadgen import TOMBSTONE, UNKNOWN, expected_value, key_name

#: Kill point, as a fraction of the round's total op budget.
KILL_FRACTION_LO = 0.2
KILL_FRACTION_HI = 0.8

#: Keys per ring-stability probe round (capped: the probe is O(keys x nodes)).
RING_PROBE_KEYS = 48


@dataclass
class ClusterChaosConfig:
    """One node-kill campaign over an N-node cluster."""

    seed: int = 0
    nodes: int = 3
    kill_points: int = 4
    connections: int = 3
    requests_per_conn: int = 150
    keys_per_conn: int = 120
    fsync: str = "always"
    capacity: int = 8 * 1024 * 1024
    shards: int = 2
    workdir: Optional[str] = None
    set_fraction: float = 0.5
    delete_fraction: float = 0.08
    deadline: float = 5.0

    def validate(self) -> None:
        if self.nodes < 2:
            raise ValueError("cluster chaos needs >= 2 nodes")
        if self.kill_points < 1:
            raise ValueError("kill_points must be >= 1")
        if self.connections < 1 or self.requests_per_conn < 1:
            raise ValueError("connections and requests_per_conn must be >= 1")
        if self.keys_per_conn < 1:
            raise ValueError("keys_per_conn must be >= 1")
        if self.fsync not in ("always", "interval", "never"):
            raise ValueError(f"unknown fsync policy {self.fsync!r}")


@dataclass
class ClusterRoundOutcome:
    """Timing-dependent per-round record (metrics only)."""

    round_index: int
    victim: str
    kill_after_ops: int
    ops_issued: int = 0
    acked_sets: int = 0
    acked_deletes: int = 0
    node_down_ops: int = 0
    degraded_checked: int = 0
    degraded_dead_arc: int = 0
    verified_keys: int = 0
    ring_probed: int = 0
    lost_unsynced: int = 0


@dataclass
class ClusterChaosReport:
    """Campaign verdict; ``render()`` is byte-deterministic per config."""

    config: ClusterChaosConfig
    wrong_bytes: int = 0
    acked_write_loss: int = 0
    deleted_resurrections: int = 0
    ring_violations: int = 0
    lost_unsynced: int = 0
    drain_exits: List[int] = field(default_factory=list)
    rounds: List[ClusterRoundOutcome] = field(default_factory=list)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def finalise(self) -> None:
        if self.wrong_bytes:
            self.violations.append(
                f"{self.wrong_bytes} reads returned bytes matching no "
                "version ever written"
            )
        if self.ring_violations:
            self.violations.append(
                f"{self.ring_violations} keys answered from a node other "
                "than their single ring owner"
            )
        if self.config.fsync == "always":
            if self.acked_write_loss:
                self.violations.append(
                    f"{self.acked_write_loss} acknowledged writes lost "
                    "under fsync=always"
                )
            if self.deleted_resurrections:
                self.violations.append(
                    f"{self.deleted_resurrections} acknowledged deletes "
                    "resurrected under fsync=always"
                )
        if any(code != 0 for code in self.drain_exits):
            self.violations.append(
                f"final drain exits {self.drain_exits}, expected all 0"
            )

    def render(self) -> str:
        config = self.config
        lines = [
            f"cluster-chaos: nodes={config.nodes} "
            f"kill_points={config.kill_points} "
            f"connections={config.connections} "
            f"requests_per_conn={config.requests_per_conn} "
            f"keys_per_conn={config.keys_per_conn} seed={config.seed}",
            f"fsync: {config.fsync}",
            f"wrong_bytes: {self.wrong_bytes}",
            f"ring_violations: {self.ring_violations}",
            f"acked_write_loss: "
            + (
                str(self.acked_write_loss)
                if config.fsync == "always"
                else f"not enforced (fsync={config.fsync})"
            ),
            f"deleted_resurrections: "
            + (
                str(self.deleted_resurrections)
                if config.fsync == "always"
                else f"not enforced (fsync={config.fsync})"
            ),
            f"final_drain_exits: "
            + ",".join(str(code) for code in self.drain_exits),
        ]
        if self.violations:
            lines.append(f"FAIL ({len(self.violations)} violations)")
            for violation in self.violations:
                lines.append(f"  - {violation}")
        else:
            lines.append(
                "OK: every kill stayed confined to its arc; recovery and "
                "ring ownership held"
            )
        return "\n".join(lines)

    def render_metrics(self) -> str:
        lines = [
            f"rounds: {len(self.rounds)}",
            f"lost_unsynced: {self.lost_unsynced}",
        ]
        for outcome in self.rounds:
            lines.append(
                f"  round {outcome.round_index}: victim={outcome.victim} "
                f"kill_after={outcome.kill_after_ops} "
                f"issued={outcome.ops_issued} acked_sets={outcome.acked_sets} "
                f"acked_deletes={outcome.acked_deletes} "
                f"node_down_ops={outcome.node_down_ops} "
                f"degraded_checked={outcome.degraded_checked} "
                f"degraded_dead_arc={outcome.degraded_dead_arc} "
                f"verified={outcome.verified_keys} "
                f"ring_probed={outcome.ring_probed} "
                f"lost={outcome.lost_unsynced}"
            )
        return "\n".join(lines)


# -- per-round traffic drivers --------------------------------------------------


class _ClusterDriver:
    """One connection's worth of seeded ring-routed traffic."""

    def __init__(
        self,
        config: ClusterChaosConfig,
        oracle: _Oracle,
        conn_id: int,
        round_index: int,
        client: ClusterClient,
        outcome: ClusterRoundOutcome,
        report: ClusterChaosReport,
        counter: List[int],
    ) -> None:
        self.config = config
        self.oracle = oracle
        self.conn_id = conn_id
        self.client = client
        self.outcome = outcome
        self.report = report
        self.counter = counter
        self.ops_rng = random.Random(
            derive_seed(config.seed, f"cluster-ops-r{round_index}-c{conn_id}")
        )

    async def run(self) -> None:
        config = self.config
        for _position in range(config.requests_per_conn):
            draw = self.ops_rng.random()
            key_id = int(config.keys_per_conn * self.ops_rng.random() ** 2)
            key_id = min(key_id, config.keys_per_conn - 1)
            if draw < config.set_fraction:
                op = "set"
            elif draw < config.set_fraction + config.delete_fraction:
                op = "delete"
            else:
                op = "get"
            self.counter[0] += 1
            self.outcome.ops_issued += 1
            try:
                await self._issue(op, key_id)
            except (NodeDownError, ServingError, OSError, EOFError,
                    asyncio.IncompleteReadError):
                # The victim's arc (or a connection the kill broke):
                # a mutation's outcome is unknowable, a read is unjudged.
                self.outcome.node_down_ops += 1
                if op in ("set", "delete"):
                    self.oracle.state[(self.conn_id, key_id)] = UNKNOWN

    async def _issue(self, op: str, key_id: int) -> None:
        key = key_name(self.conn_id, key_id)
        slot = (self.conn_id, key_id)
        if op == "set":
            version = self.oracle.attempted.get(slot, 0) + 1
            self.oracle.attempted[slot] = version
            value = expected_value(
                self.config.seed, self.conn_id, key_id, version
            )
            if await self.client.set(key, value):
                self.oracle.state[slot] = version
                self.outcome.acked_sets += 1
            return
        if op == "delete":
            await self.client.delete(key)
            # DELETED and NOT_FOUND both acknowledge "key is now absent".
            self.oracle.state[slot] = TOMBSTONE
            self.outcome.acked_deletes += 1
            return
        value = await self.client.get(key)
        if value is None:
            verdict = self.oracle.judge_miss(self.conn_id, key_id)
        else:
            verdict = self.oracle.judge_hit(self.conn_id, key_id, value)
        _tally(self.report, self.outcome, verdict, self.config.fsync)


# -- the campaign ---------------------------------------------------------------


def run_cluster_chaos(
    config: Optional[ClusterChaosConfig] = None, **kwargs
) -> ClusterChaosReport:
    """Run the node-kill campaign; see the module doc."""
    if config is None:
        config = ClusterChaosConfig(**kwargs)
    config.validate()
    return asyncio.run(_run_cluster_chaos(config))


async def _run_cluster_chaos(config: ClusterChaosConfig) -> ClusterChaosReport:
    report = ClusterChaosReport(config=config)
    workdir = config.workdir or tempfile.mkdtemp(prefix="zx-cluster-")
    supervisor = ClusterSupervisor(
        ClusterConfig(
            nodes=config.nodes,
            seed=config.seed,
            workdir=workdir,
            capacity=config.capacity,
            shards=config.shards,
            fsync=config.fsync,
            # Small on purpose: rotations/checkpoints must happen during
            # rounds so kills land inside them.
            segment_bytes=16 * 1024,
            checkpoint_bytes=48 * 1024,
        )
    )
    oracle = _Oracle(config.seed, config.connections)
    kill_rng = random.Random(derive_seed(config.seed, "cluster-kill-points"))
    total_ops = config.connections * config.requests_per_conn

    try:
        addresses = await supervisor.start()
        for round_index in range(config.kill_points):
            victim_id = f"node{kill_rng.randrange(config.nodes)}"
            kill_after = kill_rng.randint(
                max(1, int(total_ops * KILL_FRACTION_LO)),
                max(1, int(total_ops * KILL_FRACTION_HI)),
            )
            outcome = ClusterRoundOutcome(
                round_index=round_index,
                victim=victim_id,
                kill_after_ops=kill_after,
            )
            report.rounds.append(outcome)
            await _run_round(
                config, supervisor, addresses, oracle, report, outcome
            )

        # Full-strength final sweep, then graceful drain of every node.
        final = ClusterRoundOutcome(
            round_index=config.kill_points, victim="-", kill_after_ops=0
        )
        report.rounds.append(final)
        await _verify_sweep(config, addresses, oracle, report, final)
        await _ring_probe(config, supervisor, addresses, oracle, report, final)
        codes = await supervisor.stop()
        report.drain_exits = [codes[f"node{i}"] for i in range(config.nodes)]
    finally:
        await supervisor.terminate()

    report.finalise()
    return report


async def _run_round(
    config: ClusterChaosConfig,
    supervisor: ClusterSupervisor,
    addresses: Dict[str, tuple],
    oracle: _Oracle,
    report: ClusterChaosReport,
    outcome: ClusterRoundOutcome,
) -> None:
    victim = supervisor.node(outcome.victim)
    client = ClusterClient(
        addresses,
        on_node_down="error",
        deadline=config.deadline,
        rng=random.Random(
            derive_seed(config.seed, f"cluster-jitter-r{outcome.round_index}")
        ),
    )
    counter = [0]
    drivers = [
        _ClusterDriver(
            config, oracle, conn_id, outcome.round_index, client,
            outcome, report, counter,
        )
        for conn_id in range(config.connections)
    ]
    tasks = [asyncio.create_task(driver.run()) for driver in drivers]

    async def watch_and_kill() -> None:
        while counter[0] < outcome.kill_after_ops and not all(
            task.done() for task in tasks
        ):
            await asyncio.sleep(0.002)
        if victim.alive:
            await victim.kill()

    killer = asyncio.create_task(watch_and_kill())
    results = await asyncio.gather(*tasks, return_exceptions=True)
    await killer
    await client.close()
    for result in results:
        if isinstance(result, BaseException):
            report.violations.append(
                f"driver crashed: {type(result).__name__}: {result}"
            )

    # Degraded-but-correct: the victim is still dead; every live-owned
    # key must answer exactly as the oracle predicts through a client
    # that degrades the dead arc to misses.
    await _degraded_probe(config, addresses, oracle, report, outcome)

    # Restart the victim on its original port + journal dir, then judge
    # the whole keyspace and the ring-ownership invariant.
    await victim.start()
    await _verify_sweep(config, addresses, oracle, report, outcome)
    await _ring_probe(config, supervisor, addresses, oracle, report, outcome)


async def _degraded_probe(
    config: ClusterChaosConfig,
    addresses: Dict[str, tuple],
    oracle: _Oracle,
    report: ClusterChaosReport,
    outcome: ClusterRoundOutcome,
) -> None:
    client = ClusterClient(
        addresses, on_node_down="miss", deadline=config.deadline
    )
    victim = outcome.victim
    try:
        for conn_id, key_ids in _oracle_keys(config, oracle):
            keys = [key_name(conn_id, key_id) for key_id in key_ids]
            for start in range(0, len(keys), 16):
                batch_keys = keys[start : start + 16]
                batch_ids = key_ids[start : start + 16]
                try:
                    found = await client.get_many(batch_keys)
                except ServingError:
                    continue
                for key_id, key in zip(batch_ids, batch_keys):
                    if client.node_for(key) == victim:
                        # The dead arc: a miss here is the documented
                        # degradation, not a verdict about the data.
                        outcome.degraded_dead_arc += 1
                        continue
                    outcome.degraded_checked += 1
                    value = found.get(key)
                    if value is None:
                        verdict = oracle.judge_miss(conn_id, key_id)
                    else:
                        verdict = oracle.judge_hit(conn_id, key_id, value)
                    _tally(report, outcome, verdict, config.fsync)
    finally:
        await client.close()


async def _verify_sweep(
    config: ClusterChaosConfig,
    addresses: Dict[str, tuple],
    oracle: _Oracle,
    report: ClusterChaosReport,
    outcome: ClusterRoundOutcome,
) -> None:
    """Judge every key the oracle has an opinion about, whole cluster up."""
    client = ClusterClient(
        addresses, on_node_down="error", deadline=config.deadline
    )
    try:
        for conn_id, key_ids in _oracle_keys(config, oracle):
            keys = [key_name(conn_id, key_id) for key_id in key_ids]
            for start in range(0, len(keys), 16):
                batch_keys = keys[start : start + 16]
                batch_ids = key_ids[start : start + 16]
                try:
                    found = await client.get_many(batch_keys)
                except ServingError:
                    continue
                for key_id, key in zip(batch_ids, batch_keys):
                    outcome.verified_keys += 1
                    value = found.get(key)
                    if value is None:
                        verdict = oracle.judge_miss(conn_id, key_id)
                    else:
                        verdict = oracle.judge_hit(conn_id, key_id, value)
                    _tally(report, outcome, verdict, config.fsync)
    finally:
        await client.close()


async def _ring_probe(
    config: ClusterChaosConfig,
    supervisor: ClusterSupervisor,
    addresses: Dict[str, tuple],
    oracle: _Oracle,
    report: ClusterChaosReport,
    outcome: ClusterRoundOutcome,
) -> None:
    """Assert single ownership: no key answers from two live nodes.

    Probes every node *directly* (bypassing the ring) for a
    deterministic sample of keys; any value returned by a node other
    than the key's ring owner — or by more than one node — is a ring
    violation.
    """
    client = ClusterClient(
        addresses, on_node_down="error", deadline=config.deadline
    )
    sample = []
    for conn_id, key_ids in _oracle_keys(config, oracle):
        sample.extend(key_name(conn_id, key_id) for key_id in key_ids)
        if len(sample) >= RING_PROBE_KEYS:
            break
    sample = sample[:RING_PROBE_KEYS]
    try:
        for key in sample:
            owner = client.node_for(key)
            answered = []
            for node in supervisor.nodes:
                if not node.alive:
                    continue
                try:
                    value = await client.client_for(node.node_id).get(key)
                except ServingError:
                    continue
                if value is not None:
                    answered.append(node.node_id)
            outcome.ring_probed += 1
            extras = [node_id for node_id in answered if node_id != owner]
            if extras or len(answered) > 1:
                report.ring_violations += 1
    finally:
        await client.close()


def _oracle_keys(config: ClusterChaosConfig, oracle: _Oracle):
    """Deterministic iteration order over the oracle's keyspace."""
    for conn_id in range(config.connections):
        key_ids = sorted(
            key_id for (owner, key_id) in oracle.state if owner == conn_id
        )
        if key_ids:
            yield conn_id, key_ids
