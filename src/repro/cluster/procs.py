"""Cluster supervisor: N independent ``cli serve`` children, one ring.

The cluster tier deliberately has no inter-node protocol — exactly like
a memcached fleet, the nodes never talk to each other and all smarts
live in the client's ring.  What the supervisor provides is the
operational discipline around that:

* **Disjoint resources** — every node gets its own port (bound by the
  child itself via ``--port 0``, so no TOCTOU race on free ports) and
  its own journal directory (``<workdir>/node<i>/journal``); nothing is
  shared, so one node's crash or corruption cannot reach another's
  state.
* **Shared seed discipline** — node *i* runs with seed
  ``derive_seed(cluster_seed, "cluster-node<i>")``: per-node streams are
  independent but the whole fleet is a pure function of one seed.
* **Stable identity across restarts** — a node's id (``node<i>``) and
  journal directory never change, and a restart rebinds the port the
  node first learned, so the client's ring (keyed by node id) and its
  address book both stay valid across a SIGKILL/restart cycle.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.rng import derive_seed

_SERVING_RE = re.compile(rb"serving memcached protocol on ([\d.]+):(\d+)")


@dataclass
class ClusterNodeConfig:
    """Everything one serve child needs; built by :class:`ClusterConfig`."""

    node_id: str
    index: int
    seed: int
    journal_dir: str
    host: str = "127.0.0.1"
    capacity: int = 8 * 1024 * 1024
    shards: int = 2
    fsync: str = "always"
    segment_bytes: int = 1 << 20
    checkpoint_bytes: int = 4 << 20
    start_timeout: float = 30.0
    extra_args: Tuple[str, ...] = ()


@dataclass
class ClusterConfig:
    """One homogeneous N-node cluster."""

    nodes: int = 3
    seed: int = 0
    workdir: str = ""
    host: str = "127.0.0.1"
    capacity: int = 8 * 1024 * 1024
    shards: int = 2
    fsync: str = "always"
    segment_bytes: int = 1 << 20
    checkpoint_bytes: int = 4 << 20
    start_timeout: float = 30.0
    extra_args: Tuple[str, ...] = ()

    def validate(self) -> None:
        if self.nodes < 1:
            raise ValueError("nodes must be >= 1")
        if not self.workdir:
            raise ValueError("workdir is required")
        if self.fsync not in ("always", "interval", "never"):
            raise ValueError(f"unknown fsync policy {self.fsync!r}")

    def node_config(self, index: int) -> ClusterNodeConfig:
        node_id = f"node{index}"
        return ClusterNodeConfig(
            node_id=node_id,
            index=index,
            seed=derive_seed(self.seed, f"cluster-{node_id}"),
            journal_dir=os.path.join(self.workdir, node_id, "journal"),
            host=self.host,
            capacity=self.capacity,
            shards=self.shards,
            fsync=self.fsync,
            segment_bytes=self.segment_bytes,
            checkpoint_bytes=self.checkpoint_bytes,
            start_timeout=self.start_timeout,
            extra_args=self.extra_args,
        )


class NodeProcess:
    """One serve child: spawn, learn/rebind its port, kill or drain."""

    def __init__(self, config: ClusterNodeConfig) -> None:
        self.config = config
        self.node_id = config.node_id
        self.proc: Optional[asyncio.subprocess.Process] = None
        #: Learned on first start; reused on every restart so the
        #: cluster's address book survives kill/restart cycles.
        self.port: Optional[int] = None
        self.output: List[bytes] = []
        self._pump: Optional[asyncio.Task] = None

    @property
    def address(self) -> Tuple[str, int]:
        assert self.port is not None, "node not started"
        return (self.config.host, self.port)

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.returncode is None

    async def start(self) -> int:
        """Spawn the child; first start binds ``--port 0`` and learns the
        port, restarts rebind the learned port (retrying briefly in case
        the dead process's socket lingers in TIME_WAIT)."""
        attempts = 1 if self.port is None else 10
        last_text = ""
        for attempt in range(attempts):
            try:
                return await self._spawn(self.port or 0)
            except RuntimeError:
                last_text = self.text()
                if attempt + 1 == attempts:
                    raise
                await asyncio.sleep(0.2)
        raise RuntimeError(f"node {self.node_id} failed to bind: {last_text}")

    async def _spawn(self, port: int) -> int:
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
        config = self.config
        self.output = []
        self.proc = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "serve",
            "--host", config.host,
            "--port", str(port),
            "--seed", str(config.seed),
            "--capacity", str(config.capacity),
            "--shards", str(config.shards),
            "--journal-dir", config.journal_dir,
            "--fsync", config.fsync,
            "--journal-segment-bytes", str(config.segment_bytes),
            "--checkpoint-bytes", str(config.checkpoint_bytes),
            "--read-timeout", "10.0",
            "--drain-deadline", "10.0",
            *config.extra_args,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.STDOUT,
            env=env,
        )
        learned = await asyncio.wait_for(
            self._await_port(), config.start_timeout
        )
        self.port = learned
        self._pump = asyncio.get_running_loop().create_task(self._drain_output())
        return learned

    async def _await_port(self) -> int:
        assert self.proc is not None and self.proc.stdout is not None
        while True:
            line = await self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"node {self.node_id} exited before binding: "
                    + b"".join(self.output).decode(errors="replace")
                )
            self.output.append(line)
            match = _SERVING_RE.search(line)
            if match:
                return int(match.group(2))

    async def _drain_output(self) -> None:
        assert self.proc is not None and self.proc.stdout is not None
        while True:
            line = await self.proc.stdout.readline()
            if not line:
                return
            self.output.append(line)

    async def kill(self) -> None:
        """SIGKILL the node (chaos path)."""
        assert self.proc is not None
        try:
            self.proc.kill()
        except ProcessLookupError:
            pass
        await self.proc.wait()
        await self._finish_pump()

    async def drain(self) -> int:
        """Graceful SIGTERM; returns the exit code."""
        assert self.proc is not None
        try:
            self.proc.send_signal(signal.SIGTERM)
        except ProcessLookupError:
            pass
        code = await self.proc.wait()
        await self._finish_pump()
        return code

    async def _finish_pump(self) -> None:
        if self._pump is not None:
            try:
                await asyncio.wait_for(self._pump, 5.0)
            except (asyncio.TimeoutError, TimeoutError):
                self._pump.cancel()
            self._pump = None

    def text(self) -> str:
        return b"".join(self.output).decode(errors="replace")


class ClusterSupervisor:
    """Spawn and manage the fleet; the address book for clients."""

    def __init__(self, config: ClusterConfig) -> None:
        config.validate()
        self.config = config
        self.nodes: List[NodeProcess] = [
            NodeProcess(config.node_config(index))
            for index in range(config.nodes)
        ]

    async def start(self) -> Dict[str, Tuple[str, int]]:
        """Start every node (concurrently) and return the address book."""
        await asyncio.gather(*(node.start() for node in self.nodes))
        return self.addresses()

    def addresses(self) -> Dict[str, Tuple[str, int]]:
        return {node.node_id: node.address for node in self.nodes}

    def node(self, node_id: str) -> NodeProcess:
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KeyError(node_id)

    async def stop(self) -> Dict[str, int]:
        """Drain every live node; returns node id -> exit code."""
        codes: Dict[str, int] = {}
        for node in self.nodes:
            if node.proc is None:
                continue
            if node.alive:
                codes[node.node_id] = await node.drain()
            else:
                codes[node.node_id] = (
                    node.proc.returncode
                    if node.proc.returncode is not None
                    else -1
                )
        return codes

    async def terminate(self) -> None:
        """SIGKILL everything still running (cleanup path, not graceful)."""
        for node in self.nodes:
            if node.alive:
                await node.kill()
