"""Additional YCSB-style popularity generators: hotspot and latest.

The paper evaluates on Zipfian and uniform patterns only; these two round
out the YCSB family and are useful for ablations:

* **Hotspot** — a fraction of the key space (the *hot set*) receives a
  fixed fraction of accesses, uniformly within each side.  Unlike Zipf,
  the popularity cliff is sharp, which stresses the adaptive allocator's
  window logic.
* **Latest** — popularity follows recency of insertion: rank 0 is the most
  recently inserted key (YCSB's ``latest`` distribution, Zipfian over
  recency).  Callers advance :meth:`LatestGenerator.extend` as their
  insert frontier moves.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import derive_seed
from repro.workloads.zipfian import ZipfianGenerator


class HotspotGenerator:
    """Hot-set popularity: ``hot_access_fraction`` of draws land in the
    first ``hot_item_fraction`` of the key space."""

    def __init__(
        self,
        num_items: int,
        hot_item_fraction: float = 0.2,
        hot_access_fraction: float = 0.8,
        seed: int = 0,
    ) -> None:
        if num_items < 1:
            raise ValueError(f"num_items must be >= 1, got {num_items}")
        if not 0.0 < hot_item_fraction < 1.0:
            raise ValueError(
                f"hot_item_fraction must be in (0, 1), got {hot_item_fraction}"
            )
        if not 0.0 < hot_access_fraction < 1.0:
            raise ValueError(
                f"hot_access_fraction must be in (0, 1), got {hot_access_fraction}"
            )
        self.num_items = num_items
        self.hot_items = max(1, int(num_items * hot_item_fraction))
        self.hot_access_fraction = hot_access_fraction
        self._np_rng = np.random.default_rng(derive_seed(seed, "hotspot"))

    def sample(self, count: int) -> np.ndarray:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        hot = self._np_rng.random(count) < self.hot_access_fraction
        hot_draws = self._np_rng.integers(0, self.hot_items, size=count)
        cold_span = max(1, self.num_items - self.hot_items)
        cold_draws = self.hot_items + self._np_rng.integers(
            0, cold_span, size=count
        )
        ranks = np.where(hot, hot_draws, cold_draws)
        np.clip(ranks, 0, self.num_items - 1, out=ranks)
        return ranks.astype(np.int64)

    def next_rank(self) -> int:
        return int(self.sample(1)[0])

    def probability(self, rank: int) -> float:
        if not 0 <= rank < self.num_items:
            raise ValueError(f"rank {rank} out of [0, {self.num_items})")
        if rank < self.hot_items:
            return self.hot_access_fraction / self.hot_items
        cold_span = max(1, self.num_items - self.hot_items)
        return (1.0 - self.hot_access_fraction) / cold_span


class LatestGenerator:
    """Recency-skewed popularity (YCSB's ``latest``).

    Draws a Zipf rank and maps it *backwards* from the insert frontier:
    rank 0 is the newest key.  The frontier starts at ``num_items`` and
    moves with :meth:`extend`.
    """

    def __init__(self, num_items: int, theta: float = 0.99, seed: int = 0) -> None:
        if num_items < 1:
            raise ValueError(f"num_items must be >= 1, got {num_items}")
        self.num_items = num_items
        self._zipf = ZipfianGenerator(num_items, theta=theta, seed=seed)
        self._frontier = num_items

    @property
    def frontier(self) -> int:
        return self._frontier

    def extend(self, new_keys: int = 1) -> None:
        """Move the insert frontier forward by ``new_keys`` keys."""
        if new_keys < 0:
            raise ValueError(f"new_keys must be >= 0, got {new_keys}")
        self._frontier += new_keys

    def sample(self, count: int) -> np.ndarray:
        offsets = self._zipf.sample(count)
        keys = (self._frontier - 1) - offsets
        # Early in a run the frontier may be below the configured window.
        np.clip(keys, 0, None, out=keys)
        return keys

    def next_rank(self) -> int:
        return int(self.sample(1)[0])
