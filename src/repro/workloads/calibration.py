"""Calibrating Zipf skew to the paper's published coverage numbers.

Figure 1 reports, per workload, the fraction of hottest items that receives
80 % of accesses (ETC 3.6 %, APP 6.9 %, USR 17.0 %, YCSB 5.9 %).  The
synthetic Facebook traces reproduce those points by solving for the Zipf
skew that yields the same coverage over the scaled-down key space.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.zipfian import MAX_THETA


def coverage_fraction(
    theta: float, num_items: int, access_share: float = 0.8
) -> float:
    """Fraction of hottest items receiving ``access_share`` of accesses.

    Under Zipf(theta) over ``num_items`` keys, finds the smallest k such
    that the top-k popularity mass reaches ``access_share`` and returns
    ``k / num_items``.
    """
    if not 0.0 < access_share <= 1.0:
        raise ValueError(f"access_share must be in (0, 1], got {access_share}")
    if num_items < 1:
        raise ValueError(f"num_items must be >= 1, got {num_items}")
    weights = 1.0 / np.arange(1, num_items + 1, dtype=np.float64) ** theta
    cumulative = np.cumsum(weights)
    target = access_share * cumulative[-1]
    k = int(np.searchsorted(cumulative, target, side="left")) + 1
    return min(k, num_items) / num_items


def calibrate_zipf_skew(
    num_items: int,
    item_fraction: float,
    access_share: float = 0.8,
    tolerance: float = 1e-4,
) -> float:
    """Solve for the Zipf theta whose hottest ``item_fraction`` of items
    receives ``access_share`` of accesses.

    Coverage is monotonically decreasing in theta (more skew concentrates
    mass in fewer items), so a bisection suffices.  Returns the calibrated
    theta, clamped to the sampler's supported range.
    """
    if not 0.0 < item_fraction < 1.0:
        raise ValueError(f"item_fraction must be in (0, 1), got {item_fraction}")
    lo, hi = 1e-3, MAX_THETA
    if coverage_fraction(hi, num_items, access_share) > item_fraction:
        return hi
    if coverage_fraction(lo, num_items, access_share) < item_fraction:
        return lo
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if coverage_fraction(mid, num_items, access_share) > item_fraction:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0
