"""Workload generation: key popularity, value corpora, and trace synthesis.

The paper evaluates on three Facebook memcached traces (ETC, APP, USR), a
YCSB Zipfian(0.99) trace, and value corpora derived from Twitter data.  None
of those inputs are public, so this package synthesises statistically
matching equivalents — see DESIGN.md §2 for the substitution argument.
"""

from repro.workloads.calibration import calibrate_zipf_skew, coverage_fraction
from repro.workloads.facebook import (
    APP_SPEC,
    ETC_SPEC,
    USR_SPEC,
    FacebookTraceSpec,
    generate_facebook_trace,
)
from repro.workloads.hotspot import HotspotGenerator, LatestGenerator
from repro.workloads.sizes import (
    DiscreteMixtureSize,
    FixedSize,
    LogNormalSize,
    SizeSampler,
    UniformSize,
)
from repro.workloads.trace import OP_DELETE, OP_GET, OP_SET, Trace, TraceBuilder
from repro.workloads.uniform import UniformGenerator
from repro.workloads.values import (
    PlacesValueGenerator,
    TweetValueGenerator,
    ValueSource,
)
from repro.workloads.ycsb import YCSBConfig, generate_ycsb_trace
from repro.workloads.zipfian import ZipfianGenerator

__all__ = [
    "APP_SPEC",
    "ETC_SPEC",
    "USR_SPEC",
    "DiscreteMixtureSize",
    "FacebookTraceSpec",
    "FixedSize",
    "HotspotGenerator",
    "LatestGenerator",
    "LogNormalSize",
    "OP_DELETE",
    "OP_GET",
    "OP_SET",
    "PlacesValueGenerator",
    "SizeSampler",
    "Trace",
    "TraceBuilder",
    "TweetValueGenerator",
    "UniformGenerator",
    "UniformSize",
    "ValueSource",
    "YCSBConfig",
    "ZipfianGenerator",
    "calibrate_zipf_skew",
    "coverage_fraction",
    "generate_facebook_trace",
    "generate_ycsb_trace",
]
