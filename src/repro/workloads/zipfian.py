"""Zipfian key-popularity generator.

Two sampling strategies behind one interface:

* ``theta < 1`` — the constant-time rejection-free sampler from Gray et
  al.'s "Quickly Generating Billion-Record Synthetic Databases", the same
  algorithm YCSB's ``ZipfianGenerator`` implements (and the paper's YCSB
  trace uses its default skew 0.99).  Vectorised with numpy for batch
  draws.
* ``theta >= 1`` — the Gray closed form is undefined at 1, so draws fall
  back to inverse-CDF sampling over a precomputed cumulative table.  The
  Facebook ETC trace calibrates to theta slightly above 1 at bench scales,
  which is why this path exists.

Rank 0 is the most popular item.  Trace builders map ranks to keys
(optionally through a scrambling permutation, as YCSB's
``ScrambledZipfianGenerator`` does, so popularity is not correlated with
key order).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.common.rng import derive_seed

#: Cache of zeta(n, theta): computing it is O(n) and benches reuse the
#: same (n, theta) across many trace builds.  Bounded FIFO so a long
#: parameter sweep (calibration walks hundreds of thetas) cannot grow it
#: without limit; 256 entries comfortably cover any one experiment grid.
_ZETA_CACHE: Dict[Tuple[int, float], float] = {}
_ZETA_CACHE_LIMIT = 256

#: Above this skew the popularity mass concentrates so hard that the
#: cumulative table underflows float64 resolution for big key spaces.
MAX_THETA = 4.0


def zeta(n: int, theta: float) -> float:
    """Return the generalized harmonic number ``sum_{i=1..n} 1/i^theta``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    key = (n, theta)
    cached = _ZETA_CACHE.get(key)
    if cached is None:
        cached = float(np.sum(1.0 / np.arange(1, n + 1, dtype=np.float64) ** theta))
        if len(_ZETA_CACHE) >= _ZETA_CACHE_LIMIT:
            # Drop the oldest entry (insertion order): sweeps move through
            # parameters monotonically, so FIFO evicts what won't recur.
            del _ZETA_CACHE[next(iter(_ZETA_CACHE))]
        _ZETA_CACHE[key] = cached
    return cached


class ZipfianGenerator:
    """Draws ranks in ``[0, num_items)`` with Zipf(theta) popularity."""

    _BATCH = 4096

    def __init__(self, num_items: int, theta: float = 0.99, seed: int = 0) -> None:
        if num_items < 1:
            raise ValueError(f"num_items must be >= 1, got {num_items}")
        if not 0.0 < theta <= MAX_THETA:
            raise ValueError(f"theta must be in (0, {MAX_THETA}], got {theta}")
        self.num_items = num_items
        self.theta = theta
        self._np_rng = np.random.default_rng(derive_seed(seed, "zipfian"))
        self._zetan = zeta(num_items, theta)
        self._cdf = None
        if theta < 1.0 and num_items >= 2:
            self._zeta2 = zeta(2, theta)
            self._alpha = 1.0 / (1.0 - theta)
            self._eta = (1.0 - (2.0 / num_items) ** (1.0 - theta)) / (
                1.0 - self._zeta2 / self._zetan
            )
        elif theta >= 1.0:
            weights = 1.0 / np.arange(1, num_items + 1, dtype=np.float64) ** theta
            self._cdf = np.cumsum(weights)
            self._cdf /= self._cdf[-1]
        self._buffer = np.empty(0, dtype=np.int64)
        self._buffer_pos = 0

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` ranks as an ``int64`` array."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if count == 0:
            return np.empty(0, dtype=np.int64)
        if self.num_items == 1:
            return np.zeros(count, dtype=np.int64)
        u = self._np_rng.random(count)
        if self._cdf is not None:
            return np.searchsorted(self._cdf, u, side="left").astype(np.int64)
        uz = u * self._zetan
        ranks = (
            self.num_items * (self._eta * u - self._eta + 1.0) ** self._alpha
        ).astype(np.int64)
        # Floating-point slop can land exactly on num_items.
        np.clip(ranks, 0, self.num_items - 1, out=ranks)
        ranks[uz < 1.0 + 0.5**self.theta] = 1
        ranks[uz < 1.0] = 0
        return ranks

    def next_rank(self) -> int:
        """Return the next sampled rank (0 = hottest), one at a time."""
        if self._buffer_pos >= len(self._buffer):
            self._buffer = self.sample(self._BATCH)
            self._buffer_pos = 0
        rank = int(self._buffer[self._buffer_pos])
        self._buffer_pos += 1
        return rank

    def probability(self, rank: int) -> float:
        """Exact popularity of ``rank`` under this distribution."""
        if not 0 <= rank < self.num_items:
            raise ValueError(f"rank {rank} out of [0, {self.num_items})")
        return (1.0 / (rank + 1) ** self.theta) / self._zetan
