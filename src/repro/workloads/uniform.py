"""Uniform key-popularity generator.

Used by the Figure 15/16 adaptation experiment, which starts with a uniform
access pattern (no locality, so the adaptive controller grows the N-zone)
and then switches to Zipfian.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import derive_seed


class UniformGenerator:
    """Draws ranks uniformly from ``[0, num_items)``."""

    def __init__(self, num_items: int, seed: int = 0) -> None:
        if num_items < 1:
            raise ValueError(f"num_items must be >= 1, got {num_items}")
        self.num_items = num_items
        self._np_rng = np.random.default_rng(derive_seed(seed, "uniform"))

    def sample(self, count: int) -> np.ndarray:
        """Draw ``count`` ranks as an ``int64`` array."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return self._np_rng.integers(0, self.num_items, size=count, dtype=np.int64)

    def next_rank(self) -> int:
        """Return the next sampled rank."""
        return int(self._np_rng.integers(0, self.num_items))

    def probability(self, rank: int) -> float:
        """Popularity of ``rank`` — identical for all ranks."""
        if not 0 <= rank < self.num_items:
            raise ValueError(f"rank {rank} out of [0, {self.num_items})")
        return 1.0 / self.num_items
