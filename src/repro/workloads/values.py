"""Synthetic value corpora.

The paper's values come from two Twitter-derived data sets: ~10 M real
tweets (average 92 B) and *Places* records — Twitter's geographic-location
schema filled with random data and serialised with Protocol Buffers
(average 100.9 B).  Neither corpus ships with the paper, so this module
generates statistical stand-ins:

* :class:`TweetValueGenerator` — short English-like word streams with
  Twitter artefacts (mentions, hashtags, URLs) mixed in.  The artefacts are
  high-entropy, which keeps *individual* compression unprofitable while
  batched containers still deduplicate the shared vocabulary — the
  qualitative shape of Table 2's "Tweets" row.
* :class:`PlacesValueGenerator` — protobuf-style wire encoding (varint
  tags, length-delimited strings, fixed64 doubles) of a Places-like record.
  Field names repeat across records, so batching pays off strongly, like
  Table 2's "Places" row.

Both generators are deterministic per (seed, index), which lets
:class:`ValueSource` hand out a stable value for every key id without
storing the whole corpus.
"""

from __future__ import annotations

import abc
import random
import struct
from typing import Dict, Optional

from repro.common.rng import make_rng

# A compact vocabulary of frequent English words.  Small on purpose: real
# tweet streams share vocabulary heavily, which is exactly what makes
# batched compression effective.
_WORDS = (
    "the be to of and a in that have I it for not on with he as you do at "
    "this but his by from they we say her she or an will my one all would "
    "there their what so up out if about who get which go me when make can "
    "like time no just him know take people into year your good some could "
    "them see other than then now look only come its over think also back "
    "after use two how our work first well way even new want because any "
    "these give day most us great love today never really still feel happy "
    "home night life world friend music video photo watch live free best"
).split()

_TLDS = ("com", "net", "org", "io", "co")

# Multi-word collocations: real tweet streams share phrases, not just
# words, and LZ4's 4-byte minimum match only pays off on runs this long.
_PHRASES = (
    "thanks for the follow", "cant wait for", "looking forward to",
    "happy birthday to", "check this out", "oh my god", "i love this",
    "so excited about", "good morning everyone", "have a great day",
    "what do you think", "on my way to", "just finished watching",
    "follow me back", "see you soon", "this is amazing", "i cant believe",
    "one of the best", "in the world", "at the end of the day",
    "for the first time", "let me know", "thank you so much", "by the way",
    "right now", "last night", "this weekend", "new blog post",
    "my new video", "live right now", "tune in tonight", "dont forget to",
    "retweet if you", "click the link", "in my life", "all the time",
    "me and my friends", "back to work", "time to sleep",
    "need more coffee", "best day ever", "so much fun",
    "listening to music", "watching the game", "at the airport",
    "stuck in traffic",
)

_PLACE_NAMES = (
    "Springfield Riverside Franklin Greenville Bristol Clinton Fairview "
    "Salem Madison Georgetown Arlington Ashland Dover Oxford Jackson "
    "Burlington Manchester Milton Newport Auburn Dayton Lexington Milford "
    "Winchester Hudson Kingston Clayton Riverton Lakewood Centerville"
).split()

_COUNTRY_CODES = ("US", "GB", "CA", "AU", "BR", "JP", "DE", "FR", "IN", "MX")

_PLACE_TYPES = ("poi", "neighborhood", "city", "admin", "country")


class ValueGenerator(abc.ABC):
    """Generates one value deterministically per (seed, index)."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    @abc.abstractmethod
    def generate(self, index: int) -> bytes:
        """Return the value for ``index``; stable across calls."""

    def corpus(self, count: int, start: int = 0):
        """Yield ``count`` consecutive values starting at ``start``."""
        for index in range(start, start + count):
            yield self.generate(index)


class TweetValueGenerator(ValueGenerator):
    """English-like tweet texts averaging ~92 bytes.

    High-entropy Twitter artefacts (user mentions, shortened URLs, emoji
    escapes, numeric tokens) are mixed into the word stream.  They are what
    keeps *individual* compression unprofitable on real tweets — a 92 B
    message has too little self-redundancy — while batched containers still
    win by deduplicating vocabulary across tweets.
    """

    def __init__(self, seed: int = 0, mean_parts: int = 9) -> None:
        super().__init__(seed)
        if mean_parts < 1:
            raise ValueError(f"mean_parts must be >= 1, got {mean_parts}")
        self.mean_parts = mean_parts

    def _rng_for(self, index: int) -> random.Random:
        return make_rng(self.seed, f"tweet-{index}")

    def generate(self, index: int) -> bytes:
        rng = self._rng_for(index)
        count = max(2, int(rng.gauss(self.mean_parts, self.mean_parts / 3)))
        parts = []
        for _ in range(count):
            draw = rng.random()
            if draw < 0.38:
                parts.append(rng.choice(_PHRASES))
            elif draw < 0.46:
                parts.append("@" + format(rng.getrandbits(44), "011x"))
            elif draw < 0.53:
                token = format(rng.getrandbits(40), "010x")
                parts.append(f"t.co/{token}")
            elif draw < 0.58:
                parts.append(str(rng.getrandbits(17)))
            else:
                parts.append(rng.choice(_WORDS))
        text = " ".join(parts)
        # Twitter's classic hard limit.
        return text.encode("utf-8")[:140]


def _encode_varint(value: int) -> bytes:
    """Protobuf base-128 varint encoding of a non-negative integer."""
    if value < 0:
        raise ValueError("varints encode non-negative integers only")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def _encode_tag(field_number: int, wire_type: int) -> bytes:
    return _encode_varint((field_number << 3) | wire_type)


def _encode_string(field_number: int, text: str) -> bytes:
    data = text.encode("utf-8")
    return _encode_tag(field_number, 2) + _encode_varint(len(data)) + data


_DOUBLE = struct.Struct("<d")


def _encode_double(field_number: int, value: float) -> bytes:
    return _encode_tag(field_number, 1) + _DOUBLE.pack(value)


class PlacesValueGenerator(ValueGenerator):
    """Protobuf-encoded Places-like records averaging ~101 bytes.

    Schema (field numbers fixed so the wire bytes repeat across records):
    ``1: id (varint)``, ``2: name (string)``, ``3: full_name (string)``,
    ``4: country_code (string)``, ``5: place_type (string)``,
    ``6: latitude (double)``, ``7: longitude (double)``,
    ``8: url (string)``.
    """

    def generate(self, index: int) -> bytes:
        rng = make_rng(self.seed, f"place-{index}")
        name = rng.choice(_PLACE_NAMES)
        country = rng.choice(_COUNTRY_CODES)
        place_type = rng.choice(_PLACE_TYPES)
        place_id = rng.getrandbits(24)
        # ``full_name`` and the URL slug repeat ``name``; real Places
        # records carry the same internal redundancy, which is what makes
        # them individually compressible (Table 2 row "Places").
        slug = name.lower()
        record = b"".join(
            (
                _encode_tag(1, 0) + _encode_varint(place_id),
                _encode_string(2, name),
                _encode_string(3, f"{name} City, {name} County, {country}"),
                _encode_string(4, country),
                _encode_string(5, place_type),
                _encode_double(6, rng.uniform(-90.0, 90.0)),
                _encode_double(7, rng.uniform(-180.0, 180.0)),
                _encode_string(8, f"place/{slug}/{slug}.{place_type}"),
            )
        )
        return record


class FixedPatternValueGenerator(ValueGenerator):
    """Fixed-size values with a per-index pattern (USR's 2 B values)."""

    def __init__(self, size: int, seed: int = 0) -> None:
        super().__init__(seed)
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size

    def generate(self, index: int) -> bytes:
        pattern = index.to_bytes(8, "little")
        repeats = (self.size + len(pattern) - 1) // len(pattern)
        return (pattern * repeats)[: self.size]


class SizedValueSource:
    """Value source that honours a trace's recorded per-key sizes.

    Facebook-like traces draw value *sizes* from published distributions;
    the data plane then needs real bytes of exactly those sizes.  This
    source tiles/truncates a content generator's output to the recorded
    size, preserving the content's compressibility class while matching
    the size model byte-for-byte.
    """

    def __init__(self, trace, generator: ValueGenerator) -> None:
        self._generator = generator
        self._sizes: Dict[int, int] = {}
        for _op, key_id, value_size in trace:
            self._sizes.setdefault(key_id, value_size)
        self._cache: Dict[int, bytes] = {}

    def value(self, key_id: int) -> bytes:
        cached = self._cache.get(key_id)
        if cached is not None:
            return cached
        target = self._sizes.get(key_id)
        base = self._generator.generate(key_id)
        if target is None:
            # Key never appears in the trace (e.g. pre-fill of the whole
            # key space): use the generator's native size.
            target = len(base)
        if not base:
            base = b"\x00"
        if len(base) < target:
            repeats = (target + len(base) - 1) // len(base)
            base = base * repeats
        value = base[:target]
        self._cache[key_id] = value
        return value

    def size(self, key_id: int) -> int:
        return len(self.value(key_id))


class ValueSource:
    """Stable key-id -> value mapping backed by a :class:`ValueGenerator`.

    Values are memoised so the data plane sees consistent bytes for a key
    across SETs and verification GETs; ``max_cache`` bounds the memo for
    very large key spaces.
    """

    def __init__(
        self, generator: ValueGenerator, max_cache: Optional[int] = None
    ) -> None:
        self._generator = generator
        self._cache: Dict[int, bytes] = {}
        self._max_cache = max_cache

    def value(self, key_id: int) -> bytes:
        cached = self._cache.get(key_id)
        if cached is not None:
            return cached
        value = self._generator.generate(key_id)
        if self._max_cache is None or len(self._cache) < self._max_cache:
            self._cache[key_id] = value
        return value

    def size(self, key_id: int) -> int:
        return len(self.value(key_id))
