"""Shared trace-synthesis driver.

Both the YCSB workload and the Facebook-like traces are instances of the
same recipe: draw a popularity rank, scramble it to a key id, pick an
operation from the GET/SET/DELETE mix, and attach the key's value size.

Rank draws and op picks are batched through numpy; the scrambling
permutation and the per-key size are memoised (popularity skew means a few
hot ranks dominate, so both caches hit almost always).
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Protocol

import numpy as np

from repro.common.permutation import FeistelPermutation
from repro.common.rng import derive_seed
from repro.workloads.sizes import SizeSampler
from repro.workloads.trace import OP_DELETE, OP_GET, OP_SET, Trace, TraceBuilder
from repro.workloads.values import ValueGenerator


class RankGenerator(Protocol):
    """Popularity source: ZipfianGenerator and UniformGenerator both fit."""

    def sample(self, count: int) -> np.ndarray:  # pragma: no cover - protocol
        ...


class KeySizeAssigner:
    """Assigns every key id a stable value size.

    A key's size must not change between its SETs and the demand fills of
    its GET misses, so sizes are drawn once per key (seeded by the key id)
    and memoised.
    """

    def __init__(
        self,
        seed: int,
        sampler: Optional[SizeSampler] = None,
        value_generator: Optional[ValueGenerator] = None,
    ) -> None:
        if (sampler is None) == (value_generator is None):
            raise ValueError("provide exactly one of sampler / value_generator")
        self._seed = seed
        self._sampler = sampler
        self._value_generator = value_generator
        self._cache: Dict[int, int] = {}

    def size_for(self, key_id: int) -> int:
        cached = self._cache.get(key_id)
        if cached is not None:
            return cached
        if self._value_generator is not None:
            size = len(self._value_generator.generate(key_id))
        else:
            rng = random.Random(derive_seed(self._seed, f"size-{key_id}"))
            size = self._sampler.sample(rng)
        self._cache[key_id] = size
        return size


def synthesize_trace(
    name: str,
    num_requests: int,
    num_keys: int,
    rank_generator: RankGenerator,
    size_assigner: KeySizeAssigner,
    get_fraction: float = 0.95,
    set_fraction: float = 0.05,
    delete_fraction: float = 0.0,
    seed: int = 0,
    scramble: bool = True,
    key_prefix: bytes = b"key:",
) -> Trace:
    """Build a compact trace from a popularity source and an op mix.

    ``rank_generator`` yields popularity ranks (0 = hottest); ``scramble``
    maps them through a bijective permutation so key ids are uncorrelated
    with popularity, matching YCSB's scrambled-Zipfian behaviour.
    """
    fractions = (get_fraction, set_fraction, delete_fraction)
    if any(f < 0 for f in fractions):
        raise ValueError(f"operation fractions must be non-negative: {fractions}")
    total = sum(fractions)
    if not 0.999 <= total <= 1.001:
        raise ValueError(f"operation fractions must sum to 1, got {total}")

    op_rng = np.random.default_rng(derive_seed(seed, "ops"))
    draws = op_rng.random(num_requests)
    ops = np.full(num_requests, OP_DELETE, dtype=np.int8)
    ops[draws < get_fraction + set_fraction] = OP_SET
    ops[draws < get_fraction] = OP_GET

    ranks = rank_generator.sample(num_requests)
    permutation = FeistelPermutation(num_keys, seed=derive_seed(seed, "scramble"))
    scramble_cache: Dict[int, int] = {}
    builder = TraceBuilder(name, num_keys, key_prefix=key_prefix)

    for op, rank in zip(ops, ranks):
        rank = int(rank)
        if scramble:
            key_id = scramble_cache.get(rank)
            if key_id is None:
                key_id = permutation.apply(rank)
                scramble_cache[rank] = key_id
        else:
            key_id = rank
        builder.add(int(op), key_id, size_assigner.size_for(key_id))
    return builder.build()
