"""Value-size samplers.

Miss-ratio experiments only need value *sizes* per key, not bytes.  These
samplers reproduce the published size characteristics of the Facebook
workloads (e.g. USR's fixed 2 B values, ETC's heavy mass under 16 B).
"""

from __future__ import annotations

import abc
import math
import random
from typing import List, Sequence, Tuple


class SizeSampler(abc.ABC):
    """Draws one value size (in bytes) per call."""

    @abc.abstractmethod
    def sample(self, rng: random.Random) -> int:
        """Return a sampled value size, always >= 1."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Analytic (or closely estimated) mean of the distribution."""


class FixedSize(SizeSampler):
    """Every value has the same size (USR's 2 B values)."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"size must be >= 1, got {size}")
        self.size = size

    def sample(self, rng: random.Random) -> int:
        return self.size

    def mean(self) -> float:
        return float(self.size)


class UniformSize(SizeSampler):
    """Sizes uniform in ``[low, high]`` inclusive."""

    def __init__(self, low: int, high: int) -> None:
        if not 1 <= low <= high:
            raise ValueError(f"need 1 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> int:
        return rng.randint(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


class LogNormalSize(SizeSampler):
    """Log-normally distributed sizes, clipped to ``[low, high]``.

    Value sizes in memcached deployments are famously heavy-tailed; the
    Facebook characterisation's size histograms are well approximated by
    clipped log-normals.
    """

    def __init__(
        self, median: float, sigma: float, low: int = 1, high: int = 1 << 20
    ) -> None:
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        if not 1 <= low <= high:
            raise ValueError(f"need 1 <= low <= high, got [{low}, {high}]")
        self.mu = math.log(median)
        self.sigma = sigma
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> int:
        size = int(round(rng.lognormvariate(self.mu, self.sigma)))
        return max(self.low, min(self.high, size))

    def mean(self) -> float:
        # Mean of the unclipped log-normal; close enough for reporting when
        # the clip bounds are in the far tails.
        return math.exp(self.mu + self.sigma**2 / 2.0)


class DiscreteMixtureSize(SizeSampler):
    """A weighted mixture of size samplers.

    Used for ETC, where ~40 % of requests carry values under 16 B while 90 %
    of *space* is occupied by values under 500 B — a shape no single simple
    distribution matches.
    """

    def __init__(self, components: Sequence[Tuple[float, SizeSampler]]) -> None:
        if not components:
            raise ValueError("mixture needs at least one component")
        weights = [w for w, _ in components]
        if any(w <= 0 for w in weights):
            raise ValueError("mixture weights must be positive")
        total = sum(weights)
        self._cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)
        self._samplers = [sampler for _, sampler in components]
        self._weights = [w / total for w in weights]

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        for cumulative, sampler in zip(self._cumulative, self._samplers):
            if u <= cumulative:
                return sampler.sample(rng)
        return self._samplers[-1].sample(rng)

    def mean(self) -> float:
        return sum(w * s.mean() for w, s in zip(self._weights, self._samplers))
