"""YCSB-style Zipfian workload (the paper's fourth trace).

The paper generates a YCSB trace over a ~128 GB data set with Zipfian skew
0.99 and replays it with a 95 %/5 % GET/SET mix.  Values are emulated with
the Places corpus (average 100.9 B, range 2–327 B, per §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.rng import derive_seed
from repro.workloads.synth import KeySizeAssigner, synthesize_trace
from repro.workloads.trace import Trace
from repro.workloads.values import PlacesValueGenerator
from repro.workloads.zipfian import ZipfianGenerator


@dataclass
class YCSBConfig:
    """Parameters of a YCSB trace build.

    Defaults mirror the paper's setup scaled down: Zipfian(0.99) keys, a
    95/5 GET/SET mix, Places-like values.
    """

    num_requests: int = 200_000
    num_keys: int = 100_000
    theta: float = 0.99
    get_fraction: float = 0.95
    set_fraction: float = 0.05
    delete_fraction: float = 0.0
    seed: int = 42
    key_prefix: bytes = field(default=b"ycsb:")


def generate_ycsb_trace(config: YCSBConfig = None) -> Trace:
    """Synthesise a YCSB Zipfian trace per ``config``."""
    if config is None:
        config = YCSBConfig()
    zipf = ZipfianGenerator(
        config.num_keys,
        theta=config.theta,
        seed=derive_seed(config.seed, "ycsb-zipf"),
    )
    assigner = KeySizeAssigner(
        seed=derive_seed(config.seed, "ycsb-sizes"),
        value_generator=PlacesValueGenerator(seed=derive_seed(config.seed, "values")),
    )
    return synthesize_trace(
        name="YCSB",
        num_requests=config.num_requests,
        num_keys=config.num_keys,
        rank_generator=zipf,
        size_assigner=assigner,
        get_fraction=config.get_fraction,
        set_fraction=config.set_fraction,
        delete_fraction=config.delete_fraction,
        seed=config.seed,
        key_prefix=config.key_prefix,
    )
