"""Compact trace containers.

Benches replay traces of millions of requests against many cache
configurations.  Storing a ``Request`` object per entry would cost ~200 B
each, so :class:`Trace` keeps three parallel arrays (op code, key id, value
size) and materialises :class:`~repro.common.records.Request` objects only
when the real data plane needs bytes.
"""

from __future__ import annotations

from array import array
from collections import Counter
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.common.records import Operation, Request
from repro.workloads.values import ValueSource

#: Integer op codes used inside compact traces.
OP_GET = 0
OP_SET = 1
OP_DELETE = 2

_OP_TO_OPERATION = {
    OP_GET: Operation.GET,
    OP_SET: Operation.SET,
    OP_DELETE: Operation.DELETE,
}

#: Entries yielded when iterating a trace: (op_code, key_id, value_size).
TraceEntry = Tuple[int, int, int]


class Trace:
    """An immutable sequence of (op, key_id, value_size) entries."""

    def __init__(
        self,
        name: str,
        num_keys: int,
        ops: array,
        keys: array,
        sizes: array,
        key_prefix: bytes = b"key:",
    ) -> None:
        if not len(ops) == len(keys) == len(sizes):
            raise ValueError("ops/keys/sizes arrays must have equal length")
        self.name = name
        self.num_keys = num_keys
        self.key_prefix = key_prefix
        self._ops = ops
        self._keys = keys
        self._sizes = sizes

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[TraceEntry]:
        return zip(self._ops, self._keys, self._sizes)

    def __getitem__(self, index: int) -> TraceEntry:
        return (self._ops[index], self._keys[index], self._sizes[index])

    def key_bytes(self, key_id: int) -> bytes:
        """Render ``key_id`` as the wire key used by the data plane."""
        return self.key_prefix + b"%012d" % key_id

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Zero-copy numpy views over (ops, key_ids, sizes).

        The replay hot loop iterates these instead of per-entry tuples;
        ``np.frombuffer`` shares the underlying ``array`` buffers, so the
        views cost nothing and stay in sync with the (immutable) trace.
        """
        ops = np.frombuffer(self._ops, dtype=np.int8)
        keys = np.frombuffer(self._keys, dtype=np.int64)
        sizes = np.frombuffer(self._sizes, dtype=np.dtype(f"i{self._sizes.itemsize}"))
        return ops, keys, sizes

    def split(self, fraction: float) -> Tuple["Trace", "Trace"]:
        """Split into (head, tail) at ``fraction`` of the length.

        The paper warms the cache on the first 1/5 of each trace; callers
        use ``trace.split(0.2)`` to mirror that.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        cut = int(len(self) * fraction)
        head = Trace(
            f"{self.name}[:{fraction:g}]",
            self.num_keys,
            self._ops[:cut],
            self._keys[:cut],
            self._sizes[:cut],
            self.key_prefix,
        )
        tail = Trace(
            f"{self.name}[{fraction:g}:]",
            self.num_keys,
            self._ops[cut:],
            self._keys[cut:],
            self._sizes[cut:],
            self.key_prefix,
        )
        return head, tail

    def requests(self, value_source: Optional[ValueSource] = None) -> Iterator[Request]:
        """Materialise full :class:`Request` objects.

        With a ``value_source``, SET requests carry real value bytes (GETs
        and DELETEs never do).  Without one, SETs carry only their size.
        """
        for op, key_id, size in self:
            operation = _OP_TO_OPERATION[op]
            value = None
            if operation is Operation.SET and value_source is not None:
                value = value_source.value(key_id)
            yield Request(
                op=operation,
                key=self.key_bytes(key_id),
                value=value,
                value_size=size,
            )

    def access_counts(self) -> Counter:
        """Per-key count of GET and SET accesses (DELETEs excluded)."""
        counts: Counter = Counter()
        for op, key_id, _size in self:
            if op != OP_DELETE:
                counts[key_id] += 1
        return counts

    def key_sizes(self) -> Dict[int, int]:
        """Last-observed item size (key bytes + value bytes) per key."""
        sizes: Dict[int, int] = {}
        key_len = len(self.key_prefix) + 12
        for op, key_id, size in self:
            if op != OP_DELETE:
                sizes[key_id] = key_len + size
        return sizes

    def operation_mix(self) -> Dict[str, float]:
        """Fractions of GET/SET/DELETE in the trace."""
        if not len(self):
            return {"GET": 0.0, "SET": 0.0, "DELETE": 0.0}
        counts = Counter(self._ops)
        total = len(self)
        return {
            "GET": counts.get(OP_GET, 0) / total,
            "SET": counts.get(OP_SET, 0) / total,
            "DELETE": counts.get(OP_DELETE, 0) / total,
        }


def concat_traces(name: str, traces: "List[Trace]") -> "Trace":
    """Concatenate traces over the same key space (phased workloads).

    Used by the Figure 15/16 adaptation experiment, whose workload is a
    uniform phase followed by a Zipfian phase.
    """
    if not traces:
        raise ValueError("need at least one trace")
    num_keys = traces[0].num_keys
    prefix = traces[0].key_prefix
    for trace in traces[1:]:
        if trace.num_keys != num_keys or trace.key_prefix != prefix:
            raise ValueError("traces must share key space and prefix")
    ops = array("b")
    keys = array("q")
    sizes = array("l")
    for trace in traces:
        ops.extend(trace._ops)
        keys.extend(trace._keys)
        sizes.extend(trace._sizes)
    return Trace(name, num_keys, ops, keys, sizes, prefix)


class TraceBuilder:
    """Incrementally assembles a :class:`Trace`."""

    def __init__(self, name: str, num_keys: int, key_prefix: bytes = b"key:") -> None:
        if num_keys < 1:
            raise ValueError(f"num_keys must be >= 1, got {num_keys}")
        self.name = name
        self.num_keys = num_keys
        self.key_prefix = key_prefix
        self._ops = array("b")
        self._keys = array("q")
        self._sizes = array("l")

    def add(self, op: int, key_id: int, size: int) -> None:
        """Append one entry; validates op code and key range."""
        if op not in _OP_TO_OPERATION:
            raise ValueError(f"unknown op code {op}")
        if not 0 <= key_id < self.num_keys:
            raise ValueError(f"key_id {key_id} out of [0, {self.num_keys})")
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        self._ops.append(op)
        self._keys.append(key_id)
        self._sizes.append(size)

    def __len__(self) -> int:
        return len(self._ops)

    def build(self) -> Trace:
        return Trace(
            self.name,
            self.num_keys,
            self._ops,
            self._keys,
            self._sizes,
            self.key_prefix,
        )
