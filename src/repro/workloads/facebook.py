"""Synthetic stand-ins for the Facebook memcached traces (ETC, APP, USR).

The real traces [Atikoglu et al., SIGMETRICS'12] are proprietary.  Each
synthetic trace reproduces the published characteristics the paper's
analysis depends on:

* **Skew** — Figure 1 reports the fraction of hottest items that receives
  80 % of accesses: ETC 3.6 %, APP 6.9 %, USR 17.0 %.  We calibrate the
  Zipf skew per trace (over the scaled key space) to hit those points.
* **Value sizes** — USR effectively has a single 2 B value size; ETC has
  40 % of requests under 16 B with 90 % of space under 500 B values; APP
  values cluster around ~270 B.
* **Operation mix** — all three are read-dominated; USR is almost
  GET-only, ETC and APP carry single-digit-percent SETs and a trickle of
  DELETEs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.rng import derive_seed
from repro.workloads.calibration import calibrate_zipf_skew
from repro.workloads.sizes import (
    DiscreteMixtureSize,
    FixedSize,
    LogNormalSize,
    SizeSampler,
    UniformSize,
)
from repro.workloads.synth import KeySizeAssigner, synthesize_trace
from repro.workloads.trace import Trace
from repro.workloads.zipfian import ZipfianGenerator


@dataclass(frozen=True)
class FacebookTraceSpec:
    """Published characteristics a synthetic trace must reproduce."""

    name: str
    #: Fraction of hottest items receiving 80 % of accesses (Figure 1).
    hot_item_fraction: float
    get_fraction: float
    set_fraction: float
    delete_fraction: float

    def size_sampler(self) -> SizeSampler:
        """Value-size distribution for this trace."""
        if self.name == "USR":
            return FixedSize(2)
        if self.name == "APP":
            return LogNormalSize(median=270.0, sigma=0.55, low=8, high=4096)
        if self.name == "ETC":
            return DiscreteMixtureSize(
                [
                    # ~40 % of requests carry values under 16 B.
                    (0.40, UniformSize(2, 15)),
                    # Bulk of the remaining mass sits under 500 B.
                    (0.50, LogNormalSize(median=120.0, sigma=0.8, low=16, high=500)),
                    # A thin large tail.
                    (0.10, LogNormalSize(median=700.0, sigma=0.6, low=500, high=8192)),
                ]
            )
        raise ValueError(f"no size model for trace {self.name!r}")


ETC_SPEC = FacebookTraceSpec(
    name="ETC",
    hot_item_fraction=0.036,
    get_fraction=0.92,
    set_fraction=0.073,
    delete_fraction=0.007,
)

APP_SPEC = FacebookTraceSpec(
    name="APP",
    hot_item_fraction=0.069,
    get_fraction=0.925,
    set_fraction=0.075,
    delete_fraction=0.0,
)

USR_SPEC = FacebookTraceSpec(
    name="USR",
    hot_item_fraction=0.170,
    get_fraction=0.998,
    set_fraction=0.002,
    delete_fraction=0.0,
)

SPECS: Dict[str, FacebookTraceSpec] = {
    spec.name: spec for spec in (ETC_SPEC, APP_SPEC, USR_SPEC)
}

#: Memoised calibrated skews keyed by (trace name, key count): calibration
#: bisects an O(n) coverage sum and benches rebuild traces repeatedly.
_SKEW_CACHE: Dict[tuple, float] = {}


def calibrated_skew(spec: FacebookTraceSpec, num_keys: int) -> float:
    """Zipf theta whose 80 %-coverage matches the spec's hot fraction."""
    cache_key = (spec.name, num_keys)
    cached = _SKEW_CACHE.get(cache_key)
    if cached is None:
        cached = calibrate_zipf_skew(num_keys, spec.hot_item_fraction)
        _SKEW_CACHE[cache_key] = cached
    return cached


def generate_facebook_trace(
    spec: FacebookTraceSpec,
    num_requests: int = 200_000,
    num_keys: int = 100_000,
    seed: int = 42,
    theta: Optional[float] = None,
) -> Trace:
    """Synthesise a trace matching ``spec`` over a scaled key space.

    ``theta`` overrides the calibrated skew when an experiment wants to
    sweep skew directly.
    """
    if theta is None:
        theta = calibrated_skew(spec, num_keys)
    zipf = ZipfianGenerator(
        num_keys, theta=theta, seed=derive_seed(seed, f"{spec.name}-zipf")
    )
    assigner = KeySizeAssigner(
        seed=derive_seed(seed, f"{spec.name}-sizes"),
        sampler=spec.size_sampler(),
    )
    return synthesize_trace(
        name=spec.name,
        num_requests=num_requests,
        num_keys=num_keys,
        rank_generator=zipf,
        size_assigner=assigner,
        get_fraction=spec.get_fraction,
        set_fraction=spec.set_fraction,
        delete_fraction=spec.delete_fraction,
        seed=seed,
        key_prefix=spec.name.encode("ascii") + b":",
    )
