"""Background integrity scrubbing of at-rest durability files.

Disk corruption does not wait for a restart: a journal segment or
checkpoint can rot while the server is healthy, and the worst time to
discover that is during the next crash recovery.  The scrubber re-walks
every at-rest file — full record-CRC walk for segments, sidecar CRC for
checkpoints — and *quarantines* anything damaged (moves it into
``quarantine/``), so a later recovery never silently replays rotten
history; it sees a smaller-but-sound set of files and counts the loss.

The active journal segment is skipped (the writer owns it; its tail is
legitimately in flux), as is anything already quarantined.  Files that
vanish mid-scrub (a concurrent checkpoint pruned them) are skipped, not
flagged: pruning is the one legal way for an at-rest file to disappear.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.durability.journal import DurabilityStats, list_segments, read_segment
from repro.durability.manager import (
    checkpoint_crc_ok,
    list_checkpoints,
    quarantine_file,
)


@dataclass
class ScrubReport:
    """Outcome of one scrub pass."""

    files_checked: int = 0
    segments_ok: int = 0
    checkpoints_ok: int = 0
    failures: List[str] = field(default_factory=list)
    quarantined: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures


def scrub_directory(
    directory: str,
    active_segment: Optional[str] = None,
    stats: Optional[DurabilityStats] = None,
) -> ScrubReport:
    """Verify every at-rest segment and checkpoint; quarantine damage."""
    report = ScrubReport()
    active = os.path.abspath(active_segment) if active_segment else None

    for _seq, path in list_segments(directory):
        if active is not None and os.path.abspath(path) == active:
            continue
        try:
            scan = read_segment(path)
        except FileNotFoundError:
            continue  # pruned underneath us — legal
        report.files_checked += 1
        if scan.clean:
            report.segments_ok += 1
            continue
        report.failures.append(f"{os.path.basename(path)}: {scan.error}")
        if quarantine_file(directory, path) is not None:
            report.quarantined.append(os.path.basename(path))

    for _seq, path in list_checkpoints(directory):
        if not os.path.exists(path):
            continue  # pruned underneath us
        report.files_checked += 1
        if checkpoint_crc_ok(path):
            report.checkpoints_ok += 1
            continue
        report.failures.append(
            f"{os.path.basename(path)}: sidecar CRC missing or mismatched"
        )
        if quarantine_file(directory, path) is not None:
            report.quarantined.append(os.path.basename(path))

    if stats is not None:
        stats.scrub_passes += 1
        stats.scrub_files_checked += report.files_checked
        stats.scrub_failures += len(report.failures)
        stats.quarantined_files += len(report.quarantined)
    return report
