"""Append-only write-ahead journal: CRC-framed records, segment rotation.

Every acknowledged mutation (SET or DELETE) appends one record to the
active segment *before* the acknowledgement leaves the server, so the
on-disk journal is always at least as new as anything a client was told.
Recovery replays the journal on top of the newest valid checkpoint; the
frame CRCs make the only two crash outcomes distinguishable:

* a **torn tail** — the process (or machine) died mid-append; the last
  record is short or its CRC fails.  Replay stops cleanly at the last
  whole record, counts what was cut, and truncates the segment back to
  its valid prefix so the file is clean at rest.
* **bit rot** — a record *before* the tail fails its CRC.  That is not a
  crash artefact; replay stops there too (applying later records over a
  damaged middle could resurrect deleted keys), quarantines the damage,
  and counts the loss.

Wire format (segment version 1): an 8-byte magic, then per record::

    [4-byte BE payload length][payload][4-byte BE CRC32(payload)]
    payload = [1-byte op][4-byte BE key length][key bytes][value bytes]

Ops are ``S`` (set), ``D`` (delete, empty value), and ``F`` (set with
client flags — a 4-byte BE flags word between the key and the value;
plain ``S`` is still written when flags are zero, so journals without
flagged items are byte-identical to the version-1 format and readable
by older tooling).  Lengths are bounds-checked before allocation, same
as the snapshot reader.

Fsync policy decides the loss bound on *power* failure (a SIGKILL loses
nothing past the OS write() in any mode, because every append is flushed
to the kernel):

* ``always`` — fsync before every acknowledgement.  Zero acknowledged
  writes lost, ever.
* ``interval`` — fsync at most every ``fsync_interval`` seconds; a power
  cut loses at most the last interval's acknowledgements.
* ``never`` — leave it to the OS; bounded only by the kernel's own
  writeback horizon.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass, field
from time import monotonic
from typing import BinaryIO, Callable, Iterator, List, Optional, Tuple

from repro.common.errors import ConfigurationError, JournalError
from repro.common.fsio import fsync_directory

SEGMENT_MAGIC = b"ZXWAL001"

OP_SET = 0x53  # b"S"
OP_DELETE = 0x44  # b"D"
#: A SET carrying a non-zero client-flags word (4 bytes BE after the key).
OP_SET_FLAGS = 0x46  # b"F"

_FRAME_LEN = struct.Struct(">I")
_PAYLOAD_HEAD = struct.Struct(">BI")
#: Sanity bound, matching the snapshot reader: no key or value > 256 MiB.
_MAX_FIELD = 256 * 1024 * 1024
_MAX_PAYLOAD = _PAYLOAD_HEAD.size + 2 * _MAX_FIELD

FSYNC_POLICIES = ("always", "interval", "never")

SEGMENT_PREFIX = "journal-"
SEGMENT_SUFFIX = ".wal"


def segment_name(seq: int) -> str:
    return f"{SEGMENT_PREFIX}{seq:08d}{SEGMENT_SUFFIX}"


def parse_segment_seq(name: str) -> Optional[int]:
    """The sequence number of a segment file name, or None."""
    if not (name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX)):
        return None
    digits = name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)]
    if not digits.isdigit():
        return None
    return int(digits)


def list_segments(directory: str) -> List[Tuple[int, str]]:
    """(seq, path) for every segment in ``directory``, ascending by seq."""
    found = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        seq = parse_segment_seq(name)
        if seq is not None:
            found.append((seq, os.path.join(directory, name)))
    found.sort()
    return found


# -- record codec ---------------------------------------------------------------


def encode_payload(
    op: int, key: bytes, value: bytes = b"", flags: int = 0
) -> bytes:
    """The unframed record payload (shared with the replication stream).

    A SET with non-zero ``flags`` is encoded as :data:`OP_SET_FLAGS`
    regardless of the ``op`` argument; zero-flag SETs stay plain
    :data:`OP_SET` so unflagged journals match the v1 format byte for
    byte.
    """
    if op not in (OP_SET, OP_DELETE, OP_SET_FLAGS):
        raise ValueError(f"unknown journal op {op:#x}")
    if op == OP_DELETE and flags:
        raise ValueError("delete records carry no flags")
    if flags and op == OP_SET:
        op = OP_SET_FLAGS
    head = _PAYLOAD_HEAD.pack(op, len(key)) + key
    if op == OP_SET_FLAGS:
        return head + _FRAME_LEN.pack(flags) + value
    return head + value


def encode_record(
    op: int, key: bytes, value: bytes = b"", flags: int = 0
) -> bytes:
    """One framed journal record, CRC included."""
    payload = encode_payload(op, key, value, flags)
    return (
        _FRAME_LEN.pack(len(payload))
        + payload
        + _FRAME_LEN.pack(zlib.crc32(payload))
    )


def decode_payload_meta(payload: bytes) -> Tuple[int, bytes, bytes, int]:
    """(op, key, value, flags) from a CRC-verified payload.

    ``op`` is normalised: :data:`OP_SET_FLAGS` records come back as
    :data:`OP_SET` with their flags word extracted, so every consumer
    dispatches on exactly two ops.  Raises JournalError on damage.
    """
    if len(payload) < _PAYLOAD_HEAD.size:
        raise JournalError("record payload shorter than its fixed header")
    op, key_len = _PAYLOAD_HEAD.unpack_from(payload)
    if op not in (OP_SET, OP_DELETE, OP_SET_FLAGS):
        raise JournalError(f"unknown journal op {op:#x}")
    if key_len > _MAX_FIELD or _PAYLOAD_HEAD.size + key_len > len(payload):
        raise JournalError(f"implausible key length {key_len}")
    key = payload[_PAYLOAD_HEAD.size : _PAYLOAD_HEAD.size + key_len]
    rest = payload[_PAYLOAD_HEAD.size + key_len :]
    flags = 0
    if op == OP_SET_FLAGS:
        if len(rest) < _FRAME_LEN.size:
            raise JournalError("flagged set record missing its flags word")
        (flags,) = _FRAME_LEN.unpack_from(rest)
        rest = rest[_FRAME_LEN.size :]
        op = OP_SET
    if op == OP_DELETE and rest:
        raise JournalError("delete record carries a value")
    return op, key, rest, flags


def decode_payload(payload: bytes) -> Tuple[int, bytes, bytes]:
    """(op, key, value) from a CRC-verified payload; raises JournalError.

    Flags-unaware compatibility surface: flagged SETs decode as plain
    :data:`OP_SET` with the flags word stripped.
    """
    op, key, value, _flags = decode_payload_meta(payload)
    return op, key, value


@dataclass
class SegmentScan:
    """Outcome of reading one segment: the valid prefix plus damage info."""

    records: int = 0
    #: Byte offset just past the last whole, CRC-valid record.
    valid_bytes: int = 0
    #: Bytes past the valid prefix (torn tail or corrupt middle), 0 if clean.
    damaged_bytes: int = 0
    #: Human-readable description of the first damage hit, or None.
    error: Optional[str] = None

    @property
    def clean(self) -> bool:
        return self.error is None


def read_segment(
    path: str,
    apply: Optional[Callable[[int, bytes, bytes], None]] = None,
    apply_meta: Optional[Callable[[int, bytes, bytes, int], None]] = None,
) -> SegmentScan:
    """Walk a segment, calling ``apply(op, key, value)`` per valid record.

    Flags-aware consumers pass ``apply_meta(op, key, value, flags)``
    instead (recovery restores the server's flags sidecar this way);
    ``op`` is normalised either way, so both callbacks dispatch on
    SET/DELETE only.

    Never raises for damage: the scan stops at the first short or
    CRC-failing record and reports it in the returned :class:`SegmentScan`.
    A missing/garbled magic counts the whole file as damaged (records=0).
    """
    scan = SegmentScan()
    size = os.path.getsize(path)
    with open(path, "rb") as stream:
        magic = stream.read(len(SEGMENT_MAGIC))
        if magic != SEGMENT_MAGIC:
            scan.error = f"bad segment magic: {magic!r}"
            scan.damaged_bytes = size
            return scan
        scan.valid_bytes = len(SEGMENT_MAGIC)
        for op, key, value, flags, end_offset, error in _iter_frames(
            stream, scan.valid_bytes
        ):
            if error is not None:
                scan.error = error
                scan.damaged_bytes = size - scan.valid_bytes
                return scan
            if apply_meta is not None:
                apply_meta(op, key, value, flags)
            elif apply is not None:
                apply(op, key, value)
            scan.records += 1
            scan.valid_bytes = end_offset
    return scan


def _iter_frames(
    stream: BinaryIO, offset: int
) -> Iterator[Tuple[int, bytes, bytes, int, int, Optional[str]]]:
    """Yield (op, key, value, flags, end_offset, error); error terminates."""
    while True:
        header = stream.read(_FRAME_LEN.size)
        if not header:
            return
        if len(header) != _FRAME_LEN.size:
            yield 0, b"", b"", 0, offset, "torn record length header"
            return
        (payload_len,) = _FRAME_LEN.unpack(header)
        if payload_len > _MAX_PAYLOAD:
            yield 0, b"", b"", 0, offset, (
                f"implausible payload length {payload_len}"
            )
            return
        payload = stream.read(payload_len)
        trailer = stream.read(_FRAME_LEN.size)
        if len(payload) != payload_len or len(trailer) != _FRAME_LEN.size:
            yield 0, b"", b"", 0, offset, "torn record body"
            return
        (stored_crc,) = _FRAME_LEN.unpack(trailer)
        actual_crc = zlib.crc32(payload)
        if stored_crc != actual_crc:
            yield 0, b"", b"", 0, offset, (
                f"record CRC mismatch: stored {stored_crc:#010x}, "
                f"computed {actual_crc:#010x}"
            )
            return
        try:
            op, key, value, flags = decode_payload_meta(payload)
        except JournalError as exc:
            yield 0, b"", b"", 0, offset, str(exc)
            return
        offset += _FRAME_LEN.size * 2 + payload_len
        yield op, key, value, flags, offset, None


# -- the writer -----------------------------------------------------------------


@dataclass
class JournalConfig:
    """Knobs for one journal writer."""

    directory: str
    #: Rotate the active segment past this many bytes.
    segment_bytes: int = 1 << 20
    #: ``always`` / ``interval`` / ``never`` — see the module doc.
    fsync: str = "interval"
    #: Max seconds of acknowledged writes at risk under ``interval``.
    fsync_interval: float = 0.05

    def validate(self) -> None:
        if self.fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"fsync must be one of {FSYNC_POLICIES}, got {self.fsync!r}"
            )
        if self.segment_bytes < 64:
            raise ConfigurationError("segment_bytes must be >= 64")
        if self.fsync_interval <= 0:
            raise ConfigurationError("fsync_interval must be positive")


@dataclass
class DurabilityStats:
    """Every counter the durability layer keeps (mounted into metrics)."""

    journal_appends: int = 0
    journal_bytes: int = 0
    fsyncs: int = 0
    segments_created: int = 0
    segments_pruned: int = 0
    checkpoints_written: int = 0
    checkpoint_items: int = 0
    checkpoints_pruned: int = 0
    # -- recovery (set once at startup) ---------------------------------------
    recovered_checkpoint_seq: int = 0
    recovered_items: int = 0
    recovery_skipped_records: int = 0
    replayed_segments: int = 0
    replayed_records: int = 0
    torn_tail_records: int = 0
    truncated_bytes: int = 0
    quarantined_files: int = 0
    # -- scrubbing ------------------------------------------------------------
    scrub_passes: int = 0
    scrub_files_checked: int = 0
    scrub_failures: int = 0


class JournalWriter:
    """Single-writer append log with rotation and a pluggable fsync policy.

    Opening a writer never appends to an existing segment: old segments
    may end in a torn tail (that is recovery's business), so each writer
    starts a fresh segment at ``max(existing) + 1``.  Every append is
    flushed to the OS before returning — a SIGKILL can therefore lose at
    most the record being written, in any fsync mode.
    """

    def __init__(
        self,
        config: JournalConfig,
        stats: Optional[DurabilityStats] = None,
        start_seq: Optional[int] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.stats = stats if stats is not None else DurabilityStats()
        os.makedirs(config.directory, exist_ok=True)
        if start_seq is None:
            existing = list_segments(config.directory)
            start_seq = (existing[-1][0] + 1) if existing else 1
        self._seq = start_seq - 1
        self._stream: Optional[BinaryIO] = None
        self._segment_written = 0
        self._unsynced = 0
        self._last_sync = monotonic()
        #: Called as ``listener(seq, end_offset, payload)`` after each
        #: append is flushed — the replication source's live-tail hook.
        self._append_listeners: List[
            Callable[[int, int, bytes], None]
        ] = []
        self._open_next_segment()

    # -- plumbing --------------------------------------------------------------

    @property
    def current_seq(self) -> int:
        """Sequence number of the active segment."""
        return self._seq

    @property
    def position(self) -> Tuple[int, int]:
        """(segment seq, byte offset) just past the last flushed record."""
        return self._seq, self._segment_written

    def add_append_listener(
        self, listener: Callable[[int, int, bytes], None]
    ) -> None:
        self._append_listeners.append(listener)

    def remove_append_listener(
        self, listener: Callable[[int, int, bytes], None]
    ) -> None:
        try:
            self._append_listeners.remove(listener)
        except ValueError:
            pass

    @property
    def current_path(self) -> str:
        return os.path.join(self.config.directory, segment_name(self._seq))

    def _open_next_segment(self) -> None:
        if self._stream is not None:
            self._close_stream(final_sync=True)
        self._seq += 1
        path = self.current_path
        stream = open(path, "wb")
        stream.write(SEGMENT_MAGIC)
        stream.flush()
        self._stream = stream
        self._segment_written = len(SEGMENT_MAGIC)
        self.stats.segments_created += 1
        # The new directory entry must be durable before any record in it
        # matters; one dir fsync per rotation is cheap.
        fsync_directory(self.config.directory)

    def _close_stream(self, final_sync: bool) -> None:
        assert self._stream is not None
        try:
            self._stream.flush()
            if final_sync and self._unsynced:
                os.fsync(self._stream.fileno())
                self.stats.fsyncs += 1
                self._unsynced = 0
        finally:
            self._stream.close()
            self._stream = None

    # -- appends ---------------------------------------------------------------

    def append_set(self, key: bytes, value: bytes, flags: int = 0) -> None:
        self._append(encode_payload(OP_SET, key, value, flags))

    def append_delete(self, key: bytes) -> None:
        self._append(encode_payload(OP_DELETE, key))

    def _append(self, payload: bytes) -> None:
        if self._stream is None:
            raise JournalError("journal writer is closed")
        record = (
            _FRAME_LEN.pack(len(payload))
            + payload
            + _FRAME_LEN.pack(zlib.crc32(payload))
        )
        if self._segment_written + len(record) > self.config.segment_bytes:
            self._open_next_segment()
        stream = self._stream
        assert stream is not None
        stream.write(record)
        # Always push to the kernel: a process crash (SIGKILL) then loses
        # nothing that was acknowledged, regardless of fsync policy.
        stream.flush()
        self._segment_written += len(record)
        self._unsynced += 1
        self.stats.journal_appends += 1
        self.stats.journal_bytes += len(record)
        policy = self.config.fsync
        if policy == "always":
            os.fsync(stream.fileno())
            self.stats.fsyncs += 1
            self._unsynced = 0
            self._last_sync = monotonic()
        elif policy == "interval":
            now = monotonic()
            if now - self._last_sync >= self.config.fsync_interval:
                os.fsync(stream.fileno())
                self.stats.fsyncs += 1
                self._unsynced = 0
                self._last_sync = now
        for listener in self._append_listeners:
            listener(self._seq, self._segment_written, payload)

    def maybe_sync(self) -> bool:
        """Interval-policy housekeeping for idle periods; True if fsynced."""
        if (
            self._stream is None
            or not self._unsynced
            or self.config.fsync == "never"
        ):
            return False
        if (
            self.config.fsync == "interval"
            and monotonic() - self._last_sync < self.config.fsync_interval
        ):
            return False
        self.sync()
        return True

    def sync(self) -> None:
        """Force an fsync of the active segment."""
        if self._stream is None or not self._unsynced:
            return
        self._stream.flush()
        os.fsync(self._stream.fileno())
        self.stats.fsyncs += 1
        self._unsynced = 0
        self._last_sync = monotonic()

    def rotate(self) -> int:
        """Close the active segment and start a new one; returns its seq.

        Checkpoints call this first: everything in segments ``< rotate()``
        is covered by the checkpoint image about to be written.
        """
        self._open_next_segment()
        return self._seq

    def close(self) -> None:
        if self._stream is not None:
            self._close_stream(final_sync=self.config.fsync != "never")

    @property
    def closed(self) -> bool:
        return self._stream is None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
