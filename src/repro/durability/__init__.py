"""Crash-consistent durability: write-ahead journal + checkpoints + scrub.

The cache itself is volatile by design; this package makes its contents
survive anything up to and including ``kill -9`` and power loss, with a
loss bound chosen by fsync policy:

* :mod:`repro.durability.journal` — CRC-framed append-only segments that
  every acknowledged SET/DELETE writes through before the ack.
* :mod:`repro.durability.manager` — incremental checkpoints (snapshot
  format + CRC sidecar), point-in-time recovery (checkpoint + replay),
  pruning, and the :class:`DurabilityManager` that owns a directory.
* :mod:`repro.durability.scrub` — background re-verification of at-rest
  files, quarantining rot before recovery can trip over it.

See DESIGN.md §10 for the format, the recovery ordering argument, and
the per-policy loss bounds.
"""

from repro.durability.journal import (
    OP_DELETE,
    OP_SET,
    OP_SET_FLAGS,
    DurabilityStats,
    JournalConfig,
    JournalWriter,
    SegmentScan,
    decode_payload,
    decode_payload_meta,
    encode_record,
    list_segments,
    read_segment,
)
from repro.durability.manager import (
    DurabilityConfig,
    DurabilityManager,
    RecoveryResult,
    list_checkpoints,
    replay_journal,
)
from repro.durability.scrub import ScrubReport, scrub_directory

__all__ = [
    "OP_DELETE",
    "OP_SET",
    "OP_SET_FLAGS",
    "DurabilityConfig",
    "DurabilityManager",
    "DurabilityStats",
    "JournalConfig",
    "JournalWriter",
    "RecoveryResult",
    "ScrubReport",
    "SegmentScan",
    "decode_payload",
    "decode_payload_meta",
    "encode_record",
    "list_checkpoints",
    "list_segments",
    "read_segment",
    "replay_journal",
    "scrub_directory",
]
