"""Checkpoints, point-in-time recovery, and the durability manager.

A durability directory holds three kinds of files::

    journal-XXXXXXXX.wal        append-only segments (see journal.py)
    checkpoint-XXXXXXXX.snap    base image covering all segments < XXXXXXXX
    checkpoint-XXXXXXXX.snap.crc32   sidecar: hex CRC32 of the .snap bytes
    quarantine/                 damaged files moved aside, never deleted

A checkpoint reuses the snapshot wire format (so a checkpoint loads with
the ordinary :func:`repro.core.snapshot.load_snapshot`) and is written
through :func:`repro.common.fsio.atomic_write`; its sequence number is
the journal segment that was *active when the image was taken*, i.e.
recovery = load ``checkpoint-S.snap`` then replay segments ``>= S`` in
order.  After a checkpoint lands durably, segments ``< S`` and older
checkpoints are pruned — a crash mid-prune merely leaves extra files
that the next recovery ignores.

Recovery ordering (the crash-consistency argument):

1. pick the newest checkpoint whose sidecar CRC matches its bytes;
   damaged checkpoints are quarantined and the next older one is tried
   (worst case: no base image, cold start + full journal replay);
2. replay segments ``>= S`` ascending, stopping at the first torn or
   CRC-failing record.  A torn *tail* (the normal crash artefact) is
   truncated back to the valid prefix so the segment is clean at rest; a
   damaged *middle* segment is quarantined along with every later
   segment — applying newer records over a hole could resurrect deleted
   keys, and a detected bounded loss beats silent wrongness.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.common.errors import ConfigurationError
from repro.common.fsio import atomic_write, fsync_directory
from repro.core.snapshot import load_snapshot, write_snapshot
from repro.durability.journal import (
    OP_SET,
    SEGMENT_MAGIC,
    DurabilityStats,
    JournalConfig,
    JournalWriter,
    SegmentScan,
    list_segments,
    read_segment,
    segment_name,
)

CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".snap"
CRC_SUFFIX = ".crc32"
QUARANTINE_DIR = "quarantine"


def checkpoint_name(seq: int) -> str:
    return f"{CHECKPOINT_PREFIX}{seq:08d}{CHECKPOINT_SUFFIX}"


def parse_checkpoint_seq(name: str) -> Optional[int]:
    if not (
        name.startswith(CHECKPOINT_PREFIX) and name.endswith(CHECKPOINT_SUFFIX)
    ):
        return None
    digits = name[len(CHECKPOINT_PREFIX) : -len(CHECKPOINT_SUFFIX)]
    return int(digits) if digits.isdigit() else None


def list_checkpoints(directory: str) -> List[tuple]:
    """(seq, path) for every checkpoint, ascending by seq."""
    found = []
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    for name in names:
        seq = parse_checkpoint_seq(name)
        if seq is not None:
            found.append((seq, os.path.join(directory, name)))
    found.sort()
    return found


def file_crc32(path: str) -> int:
    crc = 0
    with open(path, "rb") as stream:
        for chunk in iter(lambda: stream.read(1 << 16), b""):
            crc = zlib.crc32(chunk, crc)
    return crc


def checkpoint_crc_ok(path: str) -> bool:
    """Does ``path``'s sidecar exist and match its bytes?"""
    try:
        with open(path + CRC_SUFFIX, "r", encoding="ascii") as stream:
            stored = int(stream.read().strip(), 16)
    except (OSError, ValueError):
        return False
    try:
        return file_crc32(path) == stored
    except OSError:
        return False


def quarantine_file(directory: str, path: str) -> Optional[str]:
    """Move ``path`` (plus any sidecar) into ``directory/quarantine/``.

    Returns the new path, or None if the move failed (the file is then
    left in place but callers already treat it as unusable).
    """
    qdir = os.path.join(directory, QUARANTINE_DIR)
    os.makedirs(qdir, exist_ok=True)
    target = os.path.join(qdir, os.path.basename(path))
    try:
        os.replace(path, target)
    except OSError:
        return None
    sidecar = path + CRC_SUFFIX
    if os.path.exists(sidecar):
        try:
            os.replace(sidecar, target + CRC_SUFFIX)
        except OSError:
            pass
    fsync_directory(directory)
    return target


@dataclass
class RecoveryResult:
    """What one recovery pass restored, skipped, and cut."""

    checkpoint_seq: int = 0
    checkpoint_loaded: int = 0
    checkpoint_skipped: int = 0
    replayed_segments: int = 0
    replayed_records: int = 0
    #: Damaged records hit (0 or 1: replay stops at the first).
    torn_tail_records: int = 0
    #: Bytes of journal past the last applied record (tail + later segments).
    truncated_bytes: int = 0
    quarantined: List[str] = field(default_factory=list)
    #: Human-readable damage descriptions, in the order encountered.
    incidents: List[str] = field(default_factory=list)
    #: Set when the directory is missing a whole segment of history (a
    #: hole no quarantine pass could have produced — external tampering
    #: or a partial restore).  Serving over it could resurrect deletes
    #: and hide acknowledged writes, so callers must refuse to serve.
    history_gap: Optional[str] = None

    @property
    def clean(self) -> bool:
        return not self.incidents


@dataclass
class DurabilityConfig:
    """Everything the durability subsystem needs to know."""

    directory: str
    fsync: str = "interval"
    fsync_interval: float = 0.05
    segment_bytes: int = 1 << 20
    #: Take a checkpoint once this many journal bytes accumulate past the
    #: previous one (0 disables automatic checkpoints).
    checkpoint_bytes: int = 4 << 20
    #: Seconds between background integrity scrubs (0 disables).
    scrub_interval: float = 30.0

    def validate(self) -> None:
        JournalConfig(
            directory=self.directory,
            segment_bytes=self.segment_bytes,
            fsync=self.fsync,
            fsync_interval=self.fsync_interval,
        ).validate()
        if self.checkpoint_bytes < 0:
            raise ConfigurationError("checkpoint_bytes must be >= 0")
        if self.scrub_interval < 0:
            raise ConfigurationError("scrub_interval must be >= 0")


class DurabilityManager:
    """One durability directory: journal writer + checkpoints + recovery.

    Lifecycle: construct, :meth:`recover_into` the (empty) cache, then
    :meth:`attach_to` it so subsequent mutations write through.  The
    attach happens *after* recovery so replayed records are not
    re-journaled.
    """

    def __init__(
        self,
        config: DurabilityConfig,
        stats: Optional[DurabilityStats] = None,
        meta=None,
    ) -> None:
        config.validate()
        self.config = config
        self.stats = stats if stats is not None else DurabilityStats()
        #: Optional per-item metadata sidecar (``on_set``/``on_delete``/
        #: ``flags_of``): checkpoints persist its flags (snapshot v2) and
        #: recovery repopulates it.  CAS versions are never persisted.
        self.meta = meta
        self.writer: Optional[JournalWriter] = None
        self._bytes_at_checkpoint = 0
        self.last_recovery: Optional[RecoveryResult] = None
        os.makedirs(config.directory, exist_ok=True)

    # -- recovery --------------------------------------------------------------

    def recover_into(self, cache) -> RecoveryResult:
        """Rebuild ``cache`` from checkpoint + journal, then open the writer."""
        result = replay_journal(
            self.config.directory, cache, stats=self.stats, meta=self.meta
        )
        self.last_recovery = result
        # The new segment must sort after everything already covered: a
        # surviving checkpoint at seq S with no segments left (all
        # quarantined) must not see a fresh writer open journal-00000001
        # below it — records there would be invisible to recovery.
        top = 0
        segments = list_segments(self.config.directory)
        if segments:
            top = segments[-1][0]
        for seq, _path in list_checkpoints(self.config.directory):
            top = max(top, seq)
        self.writer = JournalWriter(
            JournalConfig(
                directory=self.config.directory,
                segment_bytes=self.config.segment_bytes,
                fsync=self.config.fsync,
                fsync_interval=self.config.fsync_interval,
            ),
            stats=self.stats,
            start_seq=top + 1 if top else None,
        )
        self._bytes_at_checkpoint = self.stats.journal_bytes
        return result

    def attach_to(self, cache) -> None:
        """Wire write-through journaling into the cache (post-recovery)."""
        assert self.writer is not None, "recover_into must run first"
        cache.attach_journal(self.writer)

    # -- checkpoints -----------------------------------------------------------

    @property
    def bytes_since_checkpoint(self) -> int:
        return self.stats.journal_bytes - self._bytes_at_checkpoint

    def should_checkpoint(self) -> bool:
        return (
            self.config.checkpoint_bytes > 0
            and self.bytes_since_checkpoint >= self.config.checkpoint_bytes
        )

    def checkpoint(self, cache) -> int:
        """Write a base image covering everything journaled so far.

        Returns the checkpoint's sequence number.  Ordering: rotate (so
        the image covers all closed segments), write + fsync the image
        and its CRC sidecar atomically, then prune covered segments and
        superseded checkpoints.
        """
        assert self.writer is not None, "recover_into must run first"
        self.writer.sync()
        seq = self.writer.rotate()
        directory = self.config.directory
        path = os.path.join(directory, checkpoint_name(seq))

        def write_image(stream):
            crc_box = _Crc32Stream(stream)
            count = write_snapshot(cache, crc_box, meta=self.meta)
            return count, crc_box.crc

        count, crc = atomic_write(path, write_image)
        atomic_write(
            path + CRC_SUFFIX,
            lambda stream: stream.write(b"%08x\n" % crc),
        )
        self.stats.checkpoints_written += 1
        self.stats.checkpoint_items += count
        self._bytes_at_checkpoint = self.stats.journal_bytes
        self._prune(keep_from=seq)
        return seq

    def _prune(self, keep_from: int) -> None:
        directory = self.config.directory
        for seq, path in list_segments(directory):
            if seq < keep_from:
                try:
                    os.unlink(path)
                    self.stats.segments_pruned += 1
                except OSError:
                    pass
        for seq, path in list_checkpoints(directory):
            if seq < keep_from:
                try:
                    os.unlink(path)
                    os.unlink(path + CRC_SUFFIX)
                except FileNotFoundError:
                    pass
                except OSError:
                    continue
                self.stats.checkpoints_pruned += 1
        fsync_directory(directory)

    # -- scrubbing -------------------------------------------------------------

    def scrub_once(self):
        """Verify at-rest files; see :mod:`repro.durability.scrub`."""
        from repro.durability.scrub import scrub_directory

        active = self.writer.current_path if self.writer is not None else None
        return scrub_directory(
            self.config.directory, active_segment=active, stats=self.stats
        )

    # -- shutdown --------------------------------------------------------------

    def close(self, cache=None) -> None:
        """Final checkpoint (if a cache is given), then close the journal."""
        if self.writer is None:
            return
        if cache is not None:
            self.checkpoint(cache)
        self.writer.close()


class _Crc32Stream:
    """Write-through wrapper computing CRC32 of everything written."""

    def __init__(self, inner) -> None:
        self._inner = inner
        self.crc = 0

    def write(self, data: bytes) -> int:
        self.crc = zlib.crc32(data, self.crc)
        return self._inner.write(data)


# -- standalone recovery --------------------------------------------------------


def replay_journal(
    directory: str,
    cache,
    stats: Optional[DurabilityStats] = None,
    meta=None,
) -> RecoveryResult:
    """Point-in-time recovery: newest valid checkpoint + journal replay.

    ``meta`` (``on_set(key, flags)``/``on_delete(key)``) receives each
    restored item's client flags, repopulating the server's sidecar
    alongside the cache.

    Pure function of the directory's contents; never raises for damage —
    every anomaly is counted, quarantined or truncated, and described in
    the result's ``incidents``.
    """
    result = RecoveryResult()
    directory = os.fspath(directory)

    # 1. Newest checkpoint whose at-rest CRC matches.
    base_seq = 0
    for seq, path in reversed(list_checkpoints(directory)):
        if not checkpoint_crc_ok(path):
            result.incidents.append(
                f"checkpoint {os.path.basename(path)} failed its CRC; quarantined"
            )
            moved = quarantine_file(directory, path)
            if moved is not None:
                result.quarantined.append(os.path.basename(path))
            continue
        try:
            loaded = load_snapshot(cache, path, strict=False, meta=meta)
        except Exception as exc:
            result.incidents.append(
                f"checkpoint {os.path.basename(path)} unreadable "
                f"({type(exc).__name__}: {exc}); quarantined"
            )
            moved = quarantine_file(directory, path)
            if moved is not None:
                result.quarantined.append(os.path.basename(path))
            continue
        base_seq = seq
        result.checkpoint_seq = seq
        result.checkpoint_loaded = loaded.loaded
        result.checkpoint_skipped = loaded.skipped
        if loaded.error:
            result.incidents.append(
                f"checkpoint tail skipped: {loaded.error}"
            )
        break

    # 2. Replay segments >= base_seq, oldest first.  A *hole* in that
    # range (a missing seq the writer must have created, or a first
    # segment newer than the checkpoint expects) cannot come from our own
    # quarantine passes — those always cut history at a point, never out
    # of the middle.  Flag it and stop before the hole: replaying past
    # one could resurrect deleted keys and silently drop acked writes.
    segments = [
        (seq, path) for seq, path in list_segments(directory) if seq >= base_seq
    ]
    if segments:
        expected = base_seq if base_seq else segments[0][0]
        for seq, path in segments:
            if base_seq and seq > expected and expected == base_seq:
                result.history_gap = (
                    f"journal hole: checkpoint {checkpoint_name(base_seq)} "
                    f"expects replay to start at segment {base_seq}, but the "
                    f"oldest present is {os.path.basename(path)}"
                )
                break
            if seq > expected:
                result.history_gap = (
                    f"journal hole: segment {segment_name(expected)} is "
                    f"missing but {os.path.basename(path)} exists"
                )
                break
            expected = seq + 1
        if result.history_gap is not None:
            result.incidents.append(result.history_gap)
            segments = [(seq, path) for seq, path in segments if seq < expected]
    damaged_at: Optional[int] = None
    for index, (seq, path) in enumerate(segments):
        if damaged_at is not None:
            # Never apply records newer than a hole in history.
            result.truncated_bytes += _file_size(path)
            result.incidents.append(
                f"segment {os.path.basename(path)} follows damaged history; "
                "quarantined"
            )
            if quarantine_file(directory, path) is not None:
                result.quarantined.append(os.path.basename(path))
            continue

        def apply(op, key, value, flags):
            if op == OP_SET:
                cache.set(key, value)
                if meta is not None:
                    meta.on_set(key, flags)
            else:
                cache.delete(key)
                if meta is not None:
                    meta.on_delete(key)

        scan: SegmentScan = read_segment(path, apply_meta=apply)
        result.replayed_segments += 1
        result.replayed_records += scan.records
        if scan.clean:
            continue
        damaged_at = seq
        result.torn_tail_records += 1
        result.truncated_bytes += scan.damaged_bytes
        is_last = index == len(segments) - 1
        kind = "torn tail" if is_last else "mid-log damage"
        result.incidents.append(
            f"{kind} in {os.path.basename(path)} at byte {scan.valid_bytes}: "
            f"{scan.error}"
        )
        if scan.valid_bytes >= len(SEGMENT_MAGIC):
            # Keep the valid prefix; cut the damage so the segment is
            # clean at rest (and future scrubs do not re-flag it).
            _truncate(path, scan.valid_bytes)
        else:
            # The magic itself was damaged: nothing salvageable.
            if quarantine_file(directory, path) is not None:
                result.quarantined.append(os.path.basename(path))

    if stats is not None:
        stats.recovered_checkpoint_seq = result.checkpoint_seq
        stats.recovered_items = result.checkpoint_loaded
        stats.recovery_skipped_records = result.checkpoint_skipped
        stats.replayed_segments = result.replayed_segments
        stats.replayed_records = result.replayed_records
        stats.torn_tail_records = result.torn_tail_records
        stats.truncated_bytes = result.truncated_bytes
        stats.quarantined_files += len(result.quarantined)
    return result


def _file_size(path: str) -> int:
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


def _truncate(path: str, length: int) -> None:
    try:
        with open(path, "r+b") as stream:
            stream.truncate(length)
            stream.flush()
            os.fsync(stream.fileno())
    except OSError:
        pass
