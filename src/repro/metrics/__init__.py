"""Unified observability: one registry for every counter in the stack.

The cache core, admission controller, serving layer, replay engine, and
fault auditor all report through a :class:`MetricsRegistry` — existing
``*Stats`` dataclasses are mounted as snapshot-time views (hot paths
untouched), while latencies and payload sizes land in fixed-bucket
log-spaced histograms that merge across shards and processes.
"""

from repro.metrics.registry import (
    NULL_INSTRUMENT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    merge_snapshots,
)

__all__ = [
    "NULL_INSTRUMENT",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "log_buckets",
    "merge_snapshots",
]
