"""Dependency-free metrics: counters, gauges, log-bucket histograms.

One :class:`MetricsRegistry` per process (or per server/replay) is the
single exposition surface for every counter the reproduction keeps —
cache-core ``*Stats`` dataclasses, admission-control tallies, serving
and replay timings.  Three design rules shape it:

* **Hot paths stay hot.**  The cache core mutates its existing plain
  dataclass counters; the registry *mounts* them as views read only at
  ``snapshot()`` time (:meth:`MetricsRegistry.mount`), so enabling
  metrics adds zero work per request on the data plane.  Only genuinely
  new measurements (latencies, payload sizes) are owned instruments.
* **Near-zero-overhead no-op mode.**  A disabled registry hands out
  shared null instruments whose ``inc``/``observe`` are empty methods;
  call sites keep one attribute lookup and one no-op call, no branches.
* **Deterministic, mergeable snapshots.**  Buckets are fixed and
  log-spaced, so histograms from different shards or processes merge by
  plain element-wise addition (:func:`merge_snapshots`), and the same
  request sequence renders byte-identical exposition text (timing
  instruments are flagged and can be excluded for golden comparisons).

Rendering is dual: ``to_json()`` for tooling, ``to_prometheus()`` for
the conventional text exposition format.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence


def log_buckets(
    lo: float = 1e-6, hi: float = 10.0, per_decade: int = 5
) -> List[float]:
    """Log-spaced bucket upper bounds covering [``lo``, ``hi``].

    The defaults span 1 µs to 10 s — wide enough for both a Z-zone block
    decompression and a drain-deadline stall — at 5 buckets per decade
    (~58 % resolution), the classic Prometheus-style trade-off between
    fidelity and mergeable fixed cost.
    """
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    decades = math.log10(hi / lo)
    count = int(round(decades * per_decade))
    # Powers of 10**(1/per_decade), snapped to repr-stable rounding so
    # every process derives bit-identical bounds from the same spec.
    return [round(lo * 10 ** (i / per_decade), 12) for i in range(count + 1)]


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "help", "_value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "_value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram over log-spaced bounds.

    ``observe`` is a bisect into the bounds plus two adds; ``merge`` is
    element-wise addition, valid across shards and processes because the
    bounds are fixed by construction.  ``percentile`` interpolates
    linearly inside the landing bucket (exact enough for p50/p99
    reporting; the raw buckets are what gets exposed).
    """

    __slots__ = ("name", "help", "bounds", "counts", "_count", "_sum")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.bounds = list(bounds) if bounds is not None else log_buckets()
        if self.bounds != sorted(self.bounds):
            raise ValueError("histogram bounds must be sorted ascending")
        # One overflow bucket past the last bound (le="+Inf").
        self.counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self._count += 1
        self._sum += value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` (same bounds) into this histogram."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds "
                f"({self.name} vs {other.name})"
            )
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self._count += other._count
        self._sum += other._sum

    def percentile(self, q: float) -> float:
        """Value at percentile ``q`` (0–100); 0.0 when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self._count == 0:
            return 0.0
        rank = (q / 100.0) * self._count
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank and count:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.bounds[-1]
                )
                fraction = (rank - (cumulative - count)) / count
                return lower + (upper - lower) * fraction
        return self.bounds[-1]


class _NullInstrument:
    """Shared do-nothing stand-in handed out by a disabled registry."""

    __slots__ = ()
    name = ""
    help = ""
    value = 0
    count = 0
    sum = 0.0

    def inc(self, amount=1) -> None:
        pass

    def dec(self, amount=1) -> None:
        pass

    def set(self, value) -> None:
        pass

    def observe(self, value) -> None:
        pass

    def percentile(self, q) -> float:
        return 0.0

    def __bool__(self) -> bool:
        return False


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Instrument factory + deterministic snapshot/exposition surface.

    ``enabled=False`` turns every factory into a supplier of the shared
    :data:`NULL_INSTRUMENT` and every snapshot into ``{}``; callers keep
    their instrument handles and pay only an empty method call.
    """

    def __init__(self, enabled: bool = True, namespace: str = "repro") -> None:
        self.enabled = enabled
        self.namespace = namespace
        self._instruments: Dict[str, object] = {}
        #: name -> (callable, help); read lazily at snapshot time.
        self._views: Dict[str, tuple] = {}
        #: Instrument/view names whose values depend on wall-clock timing
        #: (excluded from golden/deterministic comparisons).
        self._timing: set = set()

    def __bool__(self) -> bool:
        return self.enabled

    # -- instrument factories --------------------------------------------------

    def counter(self, name: str, help: str = "", timing: bool = False):
        return self._register(Counter, name, help, timing)

    def gauge(self, name: str, help: str = "", timing: bool = False):
        return self._register(Gauge, name, help, timing)

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: Optional[Sequence[float]] = None,
        timing: bool = False,
    ):
        if not self.enabled:
            return NULL_INSTRUMENT
        if name in self._instruments:
            return self._existing(Histogram, name)
        instrument = Histogram(name, help, bounds)
        self._instruments[name] = instrument
        if timing:
            self._timing.add(name)
        return instrument

    def _register(self, cls, name: str, help: str, timing: bool):
        if not self.enabled:
            return NULL_INSTRUMENT
        if name in self._instruments:
            return self._existing(cls, name)
        instrument = cls(name, help)
        self._instruments[name] = instrument
        if timing:
            self._timing.add(name)
        return instrument

    def _existing(self, cls, name: str):
        instrument = self._instruments[name]
        if not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as {type(instrument).__name__}"
            )
        return instrument

    # -- views (lazy reads over existing state) --------------------------------

    def view(
        self,
        name: str,
        fn: Callable[[], float],
        help: str = "",
        timing: bool = False,
        replace: bool = False,
    ) -> None:
        """Expose ``fn()``'s value under ``name`` at snapshot time.

        ``replace=True`` rebinds an existing view (e.g. a second replay
        mounting its fresh stats object); otherwise duplicates raise.
        """
        if not self.enabled:
            return
        if name in self._instruments:
            raise ValueError(f"metric {name!r} already registered")
        if name in self._views and not replace:
            raise ValueError(f"metric {name!r} already registered")
        self._views[name] = (fn, help)
        if timing:
            self._timing.add(name)

    def mount(
        self,
        prefix: str,
        obj,
        fields: Optional[Sequence[str]] = None,
        replace: bool = False,
    ) -> None:
        """Mount every numeric field of a stats dataclass as a view.

        The object stays the mutation site (its hot-path increments are
        untouched); the registry reads ``getattr(obj, field)`` lazily.
        """
        if not self.enabled:
            return
        names = fields if fields is not None else sorted(vars(obj))
        for field in names:
            if field.startswith("_"):
                continue
            value = getattr(obj, field)
            if not isinstance(value, (int, float)):
                continue
            self.view(
                f"{prefix}_{field}",
                (lambda o=obj, f=field: getattr(o, f)),
                help=f"{type(obj).__name__}.{field}",
                replace=replace,
            )

    # -- snapshot + rendering --------------------------------------------------

    def snapshot(self, include_timing: bool = True) -> Dict[str, object]:
        """Name-sorted plain-data snapshot.

        Counters/gauges/views map to numbers; histograms to
        ``{"count", "sum", "bounds", "counts"}``.  ``include_timing=False``
        drops wall-clock-dependent series, leaving only values that are a
        pure function of the request sequence (golden-comparable).
        """
        if not self.enabled:
            return {}
        out: Dict[str, object] = {}
        for name in sorted(set(self._instruments) | set(self._views)):
            if not include_timing and name in self._timing:
                continue
            if name in self._views:
                out[name] = self._views[name][0]()
                continue
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = {
                    "count": instrument.count,
                    "sum": instrument.sum,
                    "bounds": list(instrument.bounds),
                    "counts": list(instrument.counts),
                }
            else:
                out[name] = instrument.value
        return out

    def to_json(self, include_timing: bool = True) -> str:
        return json.dumps(
            self.snapshot(include_timing=include_timing),
            indent=2,
            sort_keys=True,
        )

    def to_prometheus(self, include_timing: bool = True) -> str:
        """Prometheus-style text exposition (no labels, ``le`` excepted)."""
        lines: List[str] = []
        snap = self.snapshot(include_timing=include_timing)
        for name, value in snap.items():
            full = f"{self.namespace}_{name}"
            help_text, kind = self._describe(name)
            if help_text:
                lines.append(f"# HELP {full} {help_text}")
            lines.append(f"# TYPE {full} {kind}")
            if isinstance(value, dict):
                cumulative = 0
                for bound, count in zip(value["bounds"], value["counts"]):
                    cumulative += count
                    lines.append(
                        f'{full}_bucket{{le="{_format(bound)}"}} {cumulative}'
                    )
                cumulative += value["counts"][-1]
                lines.append(f'{full}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{full}_sum {_format(value['sum'])}")
                lines.append(f"{full}_count {value['count']}")
            else:
                lines.append(f"{full} {_format(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def _describe(self, name: str) -> tuple:
        if name in self._views:
            return self._views[name][1], "gauge"
        instrument = self._instruments[name]
        return instrument.help, instrument.kind

    def summary(
        self, include_timing: bool = True, views: bool = True
    ) -> Dict[str, object]:
        """Flat numeric mapping for ``stats``-style key/value exposition.

        Histograms flatten to ``_count``/``_sum``/``_p50``/``_p99``
        suffixes so every value is a single parseable number.
        ``views=False`` keeps only owned instruments — callers that
        already expose the mounted state (e.g. the server's ``stats``
        command) use it to avoid double-reporting.
        """
        out: Dict[str, object] = {}
        for name, value in self.snapshot(include_timing=include_timing).items():
            if not views and name in self._views:
                continue
            if isinstance(value, dict):
                instrument = self._instruments[name]
                out[f"{name}_count"] = value["count"]
                out[f"{name}_sum"] = round(value["sum"], 9)
                out[f"{name}_p50"] = round(instrument.percentile(50.0), 9)
                out[f"{name}_p99"] = round(instrument.percentile(99.0), 9)
            else:
                out[name] = value
        return out


def merge_snapshots(snapshots: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Merge per-shard/per-process snapshots by summation.

    Counters and gauges add; histograms require identical bounds and add
    element-wise.  Metrics absent from some snapshots merge from those
    that have them, so heterogeneous shards still aggregate.
    """
    merged: Dict[str, object] = {}
    for snap in snapshots:
        for name, value in snap.items():
            if name not in merged:
                merged[name] = (
                    dict(value, counts=list(value["counts"]))
                    if isinstance(value, dict)
                    else value
                )
                continue
            existing = merged[name]
            if isinstance(value, dict) != isinstance(existing, dict):
                raise ValueError(f"metric {name!r} has mixed shapes")
            if isinstance(value, dict):
                if value["bounds"] != existing["bounds"]:
                    raise ValueError(
                        f"metric {name!r} has mismatched histogram bounds"
                    )
                existing["count"] += value["count"]
                existing["sum"] += value["sum"]
                for index, count in enumerate(value["counts"]):
                    existing["counts"][index] += count
            else:
                merged[name] = existing + value
    return dict(sorted(merged.items()))


def _format(value) -> str:
    """Repr-stable number formatting (ints stay ints)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
