"""Base-cache sizing (§2.1).

The paper defines a workload's *base cache* as the smallest cache holding
the set of most-frequently-accessed items that serve 80 % of accesses,
and reports all of Table 1's cache sizes as multiples of it.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.trace import Trace


def base_cache_size(trace: Trace, access_share: float = 0.8) -> int:
    """Bytes of KV items needed to cover ``access_share`` of accesses.

    Sizes follow the trace's recorded key+value sizes; metadata is
    excluded, exactly as in the paper's Figure 2 footnote.
    """
    if not 0.0 < access_share <= 1.0:
        raise ValueError(f"access_share must be in (0, 1], got {access_share}")
    counts = trace.access_counts()
    if not counts:
        return 0
    sizes = trace.key_sizes()
    ordered = sorted(counts.items(), key=lambda kv: -kv[1])
    access_counts = np.array([count for _key, count in ordered], dtype=np.float64)
    cumulative = np.cumsum(access_counts)
    target = access_share * cumulative[-1]
    cutoff = int(np.searchsorted(cumulative, target, side="left")) + 1
    return sum(sizes.get(key, 0) for key, _count in ordered[:cutoff])
