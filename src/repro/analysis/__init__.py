"""Analysis helpers: CDFs, base-cache sizing, table formatting."""

from repro.analysis.base_cache import base_cache_size
from repro.analysis.cdf import access_cdf, coverage_point
from repro.analysis.tables import format_table

__all__ = [
    "access_cdf",
    "base_cache_size",
    "coverage_point",
    "format_table",
]
