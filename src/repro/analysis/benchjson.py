"""Machine-readable wall-clock benchmark records (``BENCH_*.json``).

The figure benches under ``benchmarks/`` measure *simulated* metrics —
miss ratios, modelled throughput — and write paper-style tables.  This
module is their wall-clock counterpart: a tiny schema for real elapsed
time, so optimisation work has committed before/after numbers.

One record per benchmark::

    {"bench": "replay_etc_mzx",
     "config": {"workload": "ETC", "num_keys": 3000, ...},
     "ops_per_sec": 29490.4,
     "p50_us": 12.1,
     "p99_us": 410.6,
     "wall_s": 2.03,
     "git_rev": "e04240e"}

``ops_per_sec``/``p50_us``/``p99_us`` are null when a bench measures
only end-to-end time (e.g. a whole experiment run).  Files hold a JSON
list of records; :func:`write_records` / :func:`load_records` round-trip
them.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence


@dataclass
class BenchRecord:
    """One wall-clock measurement."""

    bench: str
    config: Dict[str, object] = field(default_factory=dict)
    ops_per_sec: Optional[float] = None
    p50_us: Optional[float] = None
    p99_us: Optional[float] = None
    wall_s: float = 0.0
    git_rev: str = "unknown"


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of ``samples`` (``q`` in [0, 100])."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    weight = rank - low
    return float(ordered[low] * (1.0 - weight) + ordered[high] * weight)


def git_revision(repo_root: Optional[Path] = None) -> str:
    """Short git revision of ``repo_root`` (or this repo); 'unknown' offline.

    A working tree with uncommitted changes gets a ``-dirty`` suffix:
    numbers measured on modified code must not masquerade as numbers for
    the commit they happen to sit on.
    """
    if repo_root is None:
        repo_root = Path(__file__).resolve().parents[3]
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    rev = out.stdout.strip()
    if not rev:
        return "unknown"
    return rev + "-dirty" if status.stdout.strip() else rev


def write_records(records: Sequence[BenchRecord], path: Path) -> None:
    """Write ``records`` as a JSON list (stable key order, trailing newline)."""
    payload = [asdict(record) for record in records]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _record_key(record: BenchRecord) -> tuple:
    """Identity for dedupe: (bench, canonical config, rev measured at)."""
    return (
        record.bench,
        json.dumps(record.config, sort_keys=True),
        record.git_rev,
    )


def append_records(records: Sequence[BenchRecord], path: Path) -> List[BenchRecord]:
    """Merge ``records`` into the list at ``path`` and rewrite it.

    A new record *replaces* any existing row with the same
    (bench, config, git_rev) identity — re-running a bench at the same
    revision refreshes its numbers instead of silently accumulating
    duplicate rows — while rows measured at other revisions are kept, so
    the file stays an append-only history across commits.  Returns the
    merged list as written.
    """
    path = Path(path)
    existing = load_records(path) if path.exists() else []
    fresh_keys = {_record_key(record) for record in records}
    merged = [
        record for record in existing if _record_key(record) not in fresh_keys
    ]
    merged.extend(records)
    write_records(merged, path)
    return merged


def load_records(path: Path) -> List[BenchRecord]:
    """Load records written by :func:`write_records`."""
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise ValueError(f"{path}: expected a JSON list of bench records")
    return [BenchRecord(**entry) for entry in payload]
