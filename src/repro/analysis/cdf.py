"""Access-CDF analysis (Figure 1).

Figure 1 plots, per workload, the cumulative fraction of accesses covered
by the x % most frequently accessed items.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.workloads.trace import Trace


def access_cdf(trace: Trace, points: int = 200) -> List[Tuple[float, float]]:
    """(fraction of hottest items, fraction of accesses) curve.

    Items never accessed in the trace still count toward the item
    population denominator? — No: following Figure 1, the population is
    the trace's accessed item set (the cache only ever sees those).
    """
    counts = trace.access_counts()
    if not counts:
        return [(0.0, 0.0), (1.0, 1.0)]
    ordered = np.array(sorted(counts.values(), reverse=True), dtype=np.float64)
    cumulative = np.cumsum(ordered)
    total = cumulative[-1]
    n = len(ordered)
    curve = [(0.0, 0.0)]
    for i in range(1, points + 1):
        index = max(1, int(round(i * n / points)))
        curve.append((index / n, float(cumulative[index - 1] / total)))
    return curve


def coverage_point(trace: Trace, access_share: float = 0.8) -> float:
    """Fraction of hottest items receiving ``access_share`` of accesses.

    The paper's headline Figure 1 numbers (e.g. "the 3.6 % most
    frequently accessed items receive 80 % of total accesses" for ETC).
    """
    if not 0.0 < access_share <= 1.0:
        raise ValueError(f"access_share must be in (0, 1], got {access_share}")
    counts = trace.access_counts()
    if not counts:
        return 0.0
    ordered = np.array(sorted(counts.values(), reverse=True), dtype=np.float64)
    cumulative = np.cumsum(ordered)
    target = access_share * cumulative[-1]
    k = int(np.searchsorted(cumulative, target, side="left")) + 1
    return min(k, len(ordered)) / len(ordered)
