"""Plain-text table rendering for bench and experiment output."""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table.

    Numbers are right-aligned; floats shown with 4 significant decimals
    unless already strings.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(f"{cell:.4g}")
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != columns:
            raise ValueError(f"row has {len(row)} cells, expected {columns}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
