"""Replication stream framing: length-prefixed, CRC-guarded frames.

The journal (PR 6) is already a total order of acknowledged mutations;
replication ships it. Every frame on the wire reuses the journal's
framing discipline so a flipped bit anywhere in the stream is detected
before a single byte reaches the replica's cache::

    [4-byte BE frame length][frame][4-byte BE CRC32(frame)]
    frame = [1-byte type][body]

Frame types (one ASCII byte each, so captures read well in a hex dump):

``H`` HELLO      replica -> primary: resume position (segment, offset);
                 (0, 0) means "no history, start me from scratch".
``B`` SNAP_BEGIN primary -> replica: a checkpoint-image resync follows;
                 body carries the journal position the image covers up
                 to — the record stream resumes exactly there.
``C`` SNAP_CHUNK primary -> replica: raw snapshot bytes.
``E`` SNAP_END   primary -> replica: item count, image complete.
``R`` RECORD     primary -> replica: one journal record; body is the
                 position *after* the record (segment, end offset)
                 followed by the journal payload codec
                 (``[1B op][4B BE keylen][key][value]``).
``T`` HEARTBEAT  primary -> replica: (sent_bytes, backlog_bytes,
                 segment, offset) — the replica computes its lag from
                 this plus its own applied byte count.
``A`` ACK        replica -> primary: (applied_bytes, segment, offset).

Positions are ``(segment seq, byte offset within the segment)`` — the
same coordinates the journal writer and recovery use, so a replica's
resume position is directly checkable against the primary's directory.
``sent_bytes``/``applied_bytes`` count record *payload* bytes since the
current connection started; both sides reset them on (re)connect, which
keeps lag arithmetic immune to history the replica never saw.
"""

from __future__ import annotations

import asyncio
import struct
import zlib
from typing import Optional, Tuple

from repro.common.errors import ReplicationError

FRAME_LEN = struct.Struct(">I")
POSITION = struct.Struct(">QQ")
HEARTBEAT_BODY = struct.Struct(">QQQQ")
ACK_BODY = struct.Struct(">QQQ")

HELLO = 0x48  # b"H"
SNAP_BEGIN = 0x42  # b"B"
SNAP_CHUNK = 0x43  # b"C"
SNAP_END = 0x45  # b"E"
RECORD = 0x52  # b"R"
HEARTBEAT = 0x54  # b"T"
ACK = 0x41  # b"A"

_KNOWN_TYPES = frozenset(
    (HELLO, SNAP_BEGIN, SNAP_CHUNK, SNAP_END, RECORD, HEARTBEAT, ACK)
)

#: Upper bound on one frame; snapshot chunks are 256 KiB and a record is
#: bounded by the journal's own field limits, so anything bigger is
#: stream damage, not data.
MAX_FRAME = 64 * 1024 * 1024

SNAPSHOT_CHUNK_BYTES = 256 * 1024


def encode_frame(frame_type: int, body: bytes = b"") -> bytes:
    frame = bytes((frame_type,)) + body
    return (
        FRAME_LEN.pack(len(frame)) + frame + FRAME_LEN.pack(zlib.crc32(frame))
    )


def decode_frame(frame: bytes) -> Tuple[int, bytes]:
    """(type, body) from a CRC-verified frame; raises ReplicationError."""
    if not frame:
        raise ReplicationError("empty replication frame")
    frame_type = frame[0]
    if frame_type not in _KNOWN_TYPES:
        raise ReplicationError(f"unknown replication frame type {frame_type:#x}")
    return frame_type, frame[1:]


async def read_frame(reader) -> Optional[Tuple[int, bytes]]:
    """Read one frame from an ``asyncio.StreamReader``.

    Returns None on clean EOF at a frame boundary.  Mid-frame EOF, a CRC
    mismatch, or an implausible length raise :class:`ReplicationError` —
    the connection is poisoned and both sides resynchronise by
    reconnecting (TCP gives us no way to resync inside a broken stream).
    """
    header = await reader.read(FRAME_LEN.size)
    if not header:
        return None
    try:
        if len(header) != FRAME_LEN.size:
            header += await reader.readexactly(FRAME_LEN.size - len(header))
        (frame_len,) = FRAME_LEN.unpack(header)
        if frame_len == 0 or frame_len > MAX_FRAME:
            raise ReplicationError(
                f"implausible replication frame length {frame_len}"
            )
        frame = await reader.readexactly(frame_len)
        trailer = await reader.readexactly(FRAME_LEN.size)
    except (EOFError, asyncio.IncompleteReadError) as exc:
        raise ReplicationError("replication stream cut mid-frame") from exc
    (stored_crc,) = FRAME_LEN.unpack(trailer)
    actual_crc = zlib.crc32(frame)
    if stored_crc != actual_crc:
        raise ReplicationError(
            f"replication frame CRC mismatch: stored {stored_crc:#010x}, "
            f"computed {actual_crc:#010x}"
        )
    return decode_frame(frame)


# -- typed body helpers ---------------------------------------------------------


def encode_position(segment: int, offset: int) -> bytes:
    return POSITION.pack(segment, offset)


def decode_position(body: bytes) -> Tuple[int, int]:
    if len(body) != POSITION.size:
        raise ReplicationError(f"bad position body length {len(body)}")
    return POSITION.unpack(body)


def encode_record_frame(
    segment: int, end_offset: int, payload: bytes
) -> bytes:
    return encode_frame(RECORD, POSITION.pack(segment, end_offset) + payload)


def decode_record_body(body: bytes) -> Tuple[int, int, bytes]:
    """(segment, end_offset, journal payload) from a RECORD body."""
    if len(body) <= POSITION.size:
        raise ReplicationError("record frame too short for its position")
    segment, end_offset = POSITION.unpack_from(body)
    return segment, end_offset, body[POSITION.size :]


def encode_heartbeat(
    sent_bytes: int, backlog_bytes: int, segment: int, offset: int
) -> bytes:
    return encode_frame(
        HEARTBEAT,
        HEARTBEAT_BODY.pack(sent_bytes, backlog_bytes, segment, offset),
    )


def decode_heartbeat(body: bytes) -> Tuple[int, int, int, int]:
    if len(body) != HEARTBEAT_BODY.size:
        raise ReplicationError(f"bad heartbeat body length {len(body)}")
    return HEARTBEAT_BODY.unpack(body)


def encode_ack(applied_bytes: int, segment: int, offset: int) -> bytes:
    return encode_frame(ACK, ACK_BODY.pack(applied_bytes, segment, offset))


def decode_ack(body: bytes) -> Tuple[int, int, int]:
    if len(body) != ACK_BODY.size:
        raise ReplicationError(f"bad ack body length {len(body)}")
    return ACK_BODY.unpack(body)


def encode_snap_end(items: int) -> bytes:
    return encode_frame(SNAP_END, struct.pack(">Q", items))


def decode_snap_end(body: bytes) -> int:
    if len(body) != 8:
        raise ReplicationError(f"bad snapshot-end body length {len(body)}")
    return struct.unpack(">Q", body)[0]
