"""Counters for both ends of the replication stream.

One dataclass serves primary and replica roles (a promoted replica keeps
its history, and a primary that also feeds a downstream tier uses both
halves).  Mounted into the metrics registry as ``replication`` and
surfaced over the memcached ``stats`` wire as ``replication_*`` keys —
always present, zero-valued when replication is off.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ReplicationStats:
    # -- primary side (sending) ------------------------------------------------
    records_sent: int = 0
    bytes_sent: int = 0
    snapshots_sent: int = 0
    heartbeats_sent: int = 0
    acks_received: int = 0
    replica_connects: int = 0
    #: A replica's socket would not drain within the write timeout; the
    #: connection was cut rather than buffering unboundedly.
    slow_replica_drops: int = 0
    #: The bounded in-memory live queue overflowed; the sender fell back
    #: to tailing the on-disk journal (and, if pruning passes the
    #: replica's position, to a checkpoint-image resync).
    live_queue_overflows: int = 0
    # -- replica side (applying) -----------------------------------------------
    records_applied: int = 0
    bytes_applied: int = 0
    snapshots_applied: int = 0
    heartbeats_received: int = 0
    acks_sent: int = 0
    source_connects: int = 0
    #: Records the cache refused (capacity, oversized item); counted, not
    #: fatal — the replica serves what fits, like any cache.
    apply_errors: int = 0
    #: The primary went silent past the silence timeout on an otherwise
    #: open connection (half-open link); the replica cut it to re-dial.
    silent_link_drops: int = 0
    # -- serving-policy outcomes -----------------------------------------------
    lagging_rejects: int = 0
    read_only_rejects: int = 0
    promotions: int = 0
    catch_up_records: int = 0
