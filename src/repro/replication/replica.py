"""The replica's side of the stream: apply, track lag, survive, promote.

A :class:`ReplicationClient` owns one upstream connection.  It applies
records through the same ``cache.set``/``cache.delete`` calls recovery
uses (so a replica with its own ``--journal-dir`` journals everything it
applies and is durable in its own right), tracks its lag from the
primary's heartbeats, and reconnects with jittered backoff when the link
dies.  A snapshot resync replaces the replica's contents wholesale:
keys absent from the image (deleted on the primary while we were
partitioned) are removed, so a resync can never resurrect a delete.

Lag and staleness are advertised, not guessed: ``pressure_level`` is

* ``2`` (shed **all** client GETs) when the link is down or silent past
  ``stale_grace`` seconds, or lag exceeds ``hard_lag_bytes``;
* ``1`` (shed Z-zone-bound GETs first, the cheap-to-refill half) when
  lag exceeds ``max_lag_bytes``;
* ``0`` otherwise.

Promotion (:func:`catch_up_from_directory` + the server's ``promote``
command) is deliberately consensus-free: an operator or harness decides,
the replica optionally replays the dead primary's on-disk journal from
its applied position (fsync=always there means every acknowledged write
is present), flips to the primary role, and starts taking writes.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Optional, Tuple

from repro.common.errors import CacheError, ReplicationError
from repro.core.snapshot import _iter_cache_items, read_snapshot_meta
from repro.durability.journal import OP_SET, decode_payload_meta
from repro.durability.manager import replay_journal
from repro.replication import wire
from repro.replication.stats import ReplicationStats
from repro.replication.tailer import JournalTailer, SegmentPrunedError

#: Send an ACK at least every this many applied records.
ACK_EVERY_RECORDS = 64


class ReplicationClient:
    """Follow one primary; apply its journal stream into ``cache``."""

    def __init__(
        self,
        cache,
        host: str,
        port: int,
        stats: Optional[ReplicationStats] = None,
        *,
        max_lag_bytes: int = 1 << 20,
        hard_lag_bytes: int = 0,
        stale_grace: float = 1.0,
        reconnect_base: float = 0.05,
        reconnect_cap: float = 2.0,
        silence_timeout: float = 5.0,
        rng: Optional[random.Random] = None,
        meta=None,
    ) -> None:
        self.cache = cache
        #: Optional flags/CAS sidecar (the server's ItemMetaStore):
        #: applied records and resync images repopulate it so a promoted
        #: replica serves the same flags its primary did.
        self.meta = meta
        self.host = host
        self.port = port
        self.stats = stats if stats is not None else ReplicationStats()
        self.max_lag_bytes = max_lag_bytes
        self.hard_lag_bytes = (
            hard_lag_bytes if hard_lag_bytes > 0 else max_lag_bytes * 4
        )
        self.stale_grace = stale_grace
        self.reconnect_base = reconnect_base
        self.reconnect_cap = reconnect_cap
        #: A half-open link (primary SIGKILLed behind a middlebox that
        #: never propagates the close) delivers no bytes and no error; a
        #: blocking read would follow it forever.  After this long with
        #: nothing received the session is aborted so ``_run`` re-dials.
        self.silence_timeout = silence_timeout
        self.rng = rng if rng is not None else random.Random()
        #: Journal position of the last applied record on the primary.
        self.position: Tuple[int, int] = (0, 0)
        self.connected = False
        self.last_contact: Optional[float] = None
        self._conn_applied = 0
        self._heartbeat: Optional[Tuple[int, int, int, int]] = None
        self._task: Optional[asyncio.Task] = None
        self._stopped = False

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        self._task = asyncio.create_task(self._run())

    async def stop(self) -> None:
        self._stopped = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
        self.connected = False

    # -- lag / pressure --------------------------------------------------------

    def lag_bytes(self) -> int:
        """Approximate bytes of primary history not yet applied here."""
        if self._heartbeat is None:
            return 0
        sent_bytes, backlog, _seg, _off = self._heartbeat
        return max(0, sent_bytes - self._conn_applied) + backlog

    def pressure_level(self, now: Optional[float] = None) -> int:
        if now is None:
            now = time.monotonic()
        if (
            not self.connected
            or self.last_contact is None
            or now - self.last_contact > self.stale_grace
        ):
            return 2
        lag = self.lag_bytes()
        if lag > self.hard_lag_bytes:
            return 2
        if lag > self.max_lag_bytes:
            return 1
        return 0

    # -- the stream ------------------------------------------------------------

    async def _run(self) -> None:
        attempt = 0
        while not self._stopped:
            try:
                reader, writer = await asyncio.open_connection(
                    self.host, self.port
                )
            except (ConnectionError, OSError):
                attempt += 1
                await asyncio.sleep(self._backoff(attempt))
                continue
            attempt = 0
            self.stats.source_connects += 1
            try:
                await self._session(reader, writer)
            except (
                ReplicationError,
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
            ):
                pass
            finally:
                self.connected = False
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            # A beat between sessions so a refusing/eof-ing primary is not
            # hammered in a tight loop.
            await asyncio.sleep(self._backoff(1))

    def _backoff(self, attempt: int) -> float:
        ceiling = min(
            self.reconnect_cap, self.reconnect_base * (2 ** (attempt - 1))
        )
        return self.rng.uniform(0, ceiling) if ceiling > 0 else 0.0

    async def _session(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        writer.write(
            wire.encode_frame(wire.HELLO, wire.encode_position(*self.position))
        )
        await writer.drain()
        self._conn_applied = 0
        self._heartbeat = None
        snapshot_buffer: Optional[bytearray] = None
        snapshot_position: Tuple[int, int] = (0, 0)
        unacked = 0
        watchdog = asyncio.create_task(self._watchdog(writer))
        try:
            await self._stream(reader, writer, snapshot_buffer,
                               snapshot_position, unacked)
        finally:
            watchdog.cancel()
            try:
                await watchdog
            except asyncio.CancelledError:
                pass

    async def _watchdog(self, writer: asyncio.StreamWriter) -> None:
        """Abort the session if the primary goes silent for too long."""
        started = time.monotonic()
        interval = max(0.05, self.silence_timeout / 4)
        while True:
            await asyncio.sleep(interval)
            last = started
            if self.last_contact is not None:
                last = max(last, self.last_contact)
            if time.monotonic() - last > self.silence_timeout:
                self.stats.silent_link_drops += 1
                transport = writer.transport
                if transport is not None:
                    transport.abort()
                return

    async def _stream(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        snapshot_buffer: Optional[bytearray],
        snapshot_position: Tuple[int, int],
        unacked: int,
    ) -> None:
        while not self._stopped:
            frame = await wire.read_frame(reader)
            if frame is None:
                return
            # ``connected`` flips only on bytes *received* from the
            # primary: a TCP accept (or a blackholed middlebox) proves
            # nothing, and advertising health on it would let a freshly
            # partitioned replica serve a stale read during the one-RTT
            # window before the link dies again.
            self.connected = True
            self.last_contact = time.monotonic()
            frame_type, body = frame
            if frame_type == wire.RECORD:
                segment, end_offset, payload = wire.decode_record_body(body)
                self._apply_payload(payload)
                self.position = (segment, end_offset)
                self._conn_applied += len(payload)
                self.stats.records_applied += 1
                self.stats.bytes_applied += len(payload)
                unacked += 1
                if unacked >= ACK_EVERY_RECORDS:
                    self._send_ack(writer)
                    unacked = 0
            elif frame_type == wire.HEARTBEAT:
                self._heartbeat = wire.decode_heartbeat(body)
                self.stats.heartbeats_received += 1
                self._send_ack(writer)
                unacked = 0
                await writer.drain()
            elif frame_type == wire.SNAP_BEGIN:
                snapshot_buffer = bytearray()
                snapshot_position = wire.decode_position(body)
            elif frame_type == wire.SNAP_CHUNK:
                if snapshot_buffer is None:
                    raise ReplicationError("snapshot chunk outside a snapshot")
                snapshot_buffer += body
            elif frame_type == wire.SNAP_END:
                if snapshot_buffer is None:
                    raise ReplicationError("snapshot end outside a snapshot")
                wire.decode_snap_end(body)
                self._apply_snapshot(bytes(snapshot_buffer))
                snapshot_buffer = None
                self.position = snapshot_position
                self._conn_applied = 0
                self._heartbeat = None
                self.stats.snapshots_applied += 1
                self._send_ack(writer)
                unacked = 0
                await writer.drain()

    def _send_ack(self, writer: asyncio.StreamWriter) -> None:
        writer.write(wire.encode_ack(self._conn_applied, *self.position))
        self.stats.acks_sent += 1

    def _apply_payload(self, payload: bytes) -> None:
        op, key, value, flags = decode_payload_meta(payload)
        try:
            if op == OP_SET:
                self.cache.set(key, value, flags=flags)
                if self.meta is not None:
                    self.meta.on_set(key, flags)
            else:
                self.cache.delete(key)
                if self.meta is not None:
                    self.meta.on_delete(key)
        except CacheError:
            self.stats.apply_errors += 1

    def _apply_snapshot(self, image: bytes) -> None:
        """Replace our contents with the image: load it, drop the rest."""
        import io

        loaded_keys = set()
        for key, value, flags in read_snapshot_meta(
            io.BytesIO(image), strict=True
        ):
            try:
                self.cache.set(key, value, flags=flags)
            except CacheError:
                self.stats.apply_errors += 1
                continue
            if self.meta is not None:
                self.meta.on_set(key, flags)
            loaded_keys.add(key)
        stale = [
            key
            for key, _value in list(_iter_cache_items(self.cache))
            if key not in loaded_keys
        ]
        for key in stale:
            try:
                self.cache.delete(key)
            except CacheError:
                self.stats.apply_errors += 1
            if self.meta is not None:
                self.meta.on_delete(key)


# -- promotion catch-up ----------------------------------------------------------


def catch_up_from_directory(
    cache, directory: str, position: Tuple[int, int], meta=None
) -> Tuple[int, str]:
    """Apply the dead primary's on-disk journal from ``position``.

    Returns ``(records_applied, mode)`` where mode is ``"tail"`` (replayed
    forward from the replica's applied position — the cheap, warm path)
    or ``"full"`` (the position was unusable, so the replica's contents
    were cleared and the directory recovered from scratch, exactly as the
    primary itself would have).  Either way the promoted cache ends at
    the dead primary's final acknowledged state.
    """
    segment, offset = position
    if segment > 0:
        tailer = JournalTailer(directory, segment, offset)
        try:
            total = 0
            while True:
                batch = tailer.read_batch(1024)
                if not batch:
                    return total, "tail"
                for op, key, value, payload, _seg, _end in batch:
                    try:
                        if op == OP_SET:
                            flags = decode_payload_meta(payload)[3]
                            cache.set(key, value, flags=flags)
                            if meta is not None:
                                meta.on_set(key, flags)
                        else:
                            cache.delete(key)
                            if meta is not None:
                                meta.on_delete(key)
                    except CacheError:
                        pass
                    total += 1
        except SegmentPrunedError:
            pass
        finally:
            tailer.close()
    # Full recovery: drop everything we have (our history may predate the
    # newest checkpoint, and loading an image over live contents could
    # resurrect keys the primary deleted), then replay the directory.
    for key in [key for key, _value in list(_iter_cache_items(cache))]:
        try:
            cache.delete(key)
        except CacheError:
            pass
    if meta is not None:
        meta.clear()
    result = replay_journal(directory, cache, meta=meta)
    return result.checkpoint_loaded + result.replayed_records, "full"
