"""The primary's replication listener: journal shipping with backpressure.

One :class:`ReplicationSource` serves any number of replicas.  Each
replica connection moves through three sending modes, cheapest first:

* **live** — the journal writer's append listener feeds a *bounded*
  in-memory queue; records go out without touching disk again.
* **file tail** — the queue overflowed (or the replica just connected
  behind the tail): re-read the on-disk journal from the replica's
  position via :class:`~repro.replication.tailer.JournalTailer`.  The
  journal itself is the retransmission buffer, bounded by checkpoint
  pruning — the sender never buffers more than ``queue_bytes`` in RAM.
* **snapshot resync** — pruning passed the replica's position (or its
  HELLO position was bogus): stream the current cache image (the same
  bytes a PR 6 checkpoint would hold) and resume tailing from the
  position captured atomically with the image.

Backpressure is explicit at every hop: socket writes must drain within
``write_timeout`` or the replica is dropped (it reconnects and resumes
from its position — usually straight into file-tail mode), and the live
queue never exceeds ``queue_bytes``.
"""

from __future__ import annotations

import asyncio
import io
import os
from collections import deque
from typing import Deque, Optional, Set, Tuple

from repro.core.snapshot import write_snapshot
from repro.durability.journal import SEGMENT_MAGIC, list_segments, segment_name
from repro.durability.manager import DurabilityManager
from repro.replication import wire
from repro.replication.stats import ReplicationStats
from repro.replication.tailer import JournalTailer, SegmentPrunedError


class _ReplicaSession:
    """Per-connection send state; owned by the sender task."""

    __slots__ = (
        "live",
        "queue",
        "queue_bytes",
        "sent_bytes",
        "acked_bytes",
        "sent_pos",
        "acked_pos",
        "closed",
        "event",
    )

    def __init__(self) -> None:
        self.live = False
        self.queue: Deque[Tuple[bytes, int, int]] = deque()
        self.queue_bytes = 0
        self.sent_bytes = 0
        self.acked_bytes = 0
        self.sent_pos: Tuple[int, int] = (0, 0)
        self.acked_pos: Tuple[int, int] = (0, 0)
        self.closed = False
        self.event = asyncio.Event()

    def reset_stream_counters(self) -> None:
        """Both sides restart byte accounting at a snapshot boundary."""
        self.sent_bytes = 0
        self.acked_bytes = 0

    def drop_live(self) -> None:
        self.live = False
        self.queue.clear()
        self.queue_bytes = 0

    @property
    def lag_bytes(self) -> int:
        return max(0, self.sent_bytes - self.acked_bytes) + self.queue_bytes


class ReplicationSource:
    """Stream the journal (live tail + history + resync images) to replicas."""

    def __init__(
        self,
        cache,
        manager: DurabilityManager,
        stats: Optional[ReplicationStats] = None,
        *,
        heartbeat_interval: float = 0.25,
        write_timeout: float = 5.0,
        queue_bytes: int = 1 << 20,
        hello_timeout: float = 10.0,
        flush_interval: float = 0.005,
        flush_bytes: int = 256 * 1024,
    ) -> None:
        assert manager.writer is not None, "recover_into must run first"
        self.cache = cache
        self.manager = manager
        self.stats = stats if stats is not None else ReplicationStats()
        self.heartbeat_interval = heartbeat_interval
        self.write_timeout = write_timeout
        self.queue_bytes = queue_bytes
        self.hello_timeout = hello_timeout
        #: Live records coalesce for up to this long before one socket
        #: write ships them all.  Waking the sender (and paying a write
        #: + drain cycle) per append would tax every SET ack on the
        #: serving path; a bounded flush tick makes the primary's
        #: streaming cost per-batch instead of per-record, at the price
        #: of ~flush_interval of extra replica lag.
        self.flush_interval = flush_interval
        #: ...except a burst this large flushes immediately.
        self.flush_bytes = flush_bytes
        self._sessions: Set[_ReplicaSession] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None

    # -- lifecycle -------------------------------------------------------------

    async def start(self, host: str, port: int) -> int:
        self._server = await asyncio.start_server(
            self._handle_replica, host=host, port=port
        )
        self.manager.writer.add_append_listener(self._on_append)
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def close(self) -> None:
        if self.manager.writer is not None:
            self.manager.writer.remove_append_listener(self._on_append)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for session in list(self._sessions):
            session.closed = True
            session.event.set()

    @property
    def replicas_connected(self) -> int:
        return len(self._sessions)

    @property
    def max_replica_lag_bytes(self) -> int:
        return max((s.lag_bytes for s in self._sessions), default=0)

    # -- live feed -------------------------------------------------------------

    def _on_append(self, segment: int, end_offset: int, payload: bytes) -> None:
        for session in self._sessions:
            if not session.live:
                continue
            session.queue.append((payload, segment, end_offset))
            session.queue_bytes += len(payload)
            if session.queue_bytes > self.queue_bytes:
                session.drop_live()
                self.stats.live_queue_overflows += 1
                session.event.set()
            elif session.queue_bytes >= self.flush_bytes:
                # A burst worth a socket write right now; smaller dribs
                # ride the sender's flush tick so the serving path never
                # pays a per-record sender wakeup.
                session.event.set()

    # -- per-replica sender ----------------------------------------------------

    async def _handle_replica(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = _ReplicaSession()
        ack_task: Optional[asyncio.Task] = None
        try:
            frame = await asyncio.wait_for(
                wire.read_frame(reader), self.hello_timeout
            )
            if frame is None or frame[0] != wire.HELLO:
                return
            segment, offset = wire.decode_position(frame[1])
            self.stats.replica_connects += 1
            self._sessions.add(session)
            ack_task = asyncio.create_task(self._ack_loop(reader, session))
            if not self._position_on_disk(segment, offset):
                segment, offset = await self._send_snapshot(writer, session)
            tailer = JournalTailer(
                self.manager.config.directory, segment, offset
            )
            session.sent_pos = tailer.position
            await self._send_loop(writer, session, tailer)
        except (
            asyncio.TimeoutError,
            ConnectionError,
            OSError,
            asyncio.IncompleteReadError,
        ):
            pass
        except Exception:
            # A malformed HELLO (ReplicationError) or apply-side surprise
            # must not take the primary's serving loop down.
            pass
        finally:
            self._sessions.discard(session)
            session.closed = True
            if ack_task is not None:
                ack_task.cancel()
                try:
                    await ack_task
                except (asyncio.CancelledError, Exception):
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _position_on_disk(self, segment: int, offset: int) -> bool:
        """Can a tailer resume from (segment, offset) without a hole?"""
        if segment == 0:
            return False
        path = os.path.join(
            self.manager.config.directory, segment_name(segment)
        )
        try:
            size = os.path.getsize(path)
        except OSError:
            return False
        return len(SEGMENT_MAGIC) <= max(offset, len(SEGMENT_MAGIC)) <= size

    async def _drain(self, writer: asyncio.StreamWriter) -> None:
        # The common case on a healthy link: the transport already
        # flushed everything in write(), so drain() would not suspend —
        # skip the wait_for scaffolding (it costs a full task
        # schedule/wake cycle) and keep the timeout for real backpressure.
        transport = writer.transport
        if transport is not None and transport.get_write_buffer_size() == 0:
            return
        await asyncio.wait_for(writer.drain(), self.write_timeout)

    async def _send_snapshot(
        self, writer: asyncio.StreamWriter, session: _ReplicaSession
    ) -> Tuple[int, int]:
        """Stream the cache image; returns the position it covers up to.

        The position capture and the image build happen with no await
        point between them, so the image is exactly the state at that
        journal position (the event loop cannot interleave a mutation).
        """
        session.drop_live()
        position = self.manager.writer.position
        buffer = io.BytesIO()
        # The manager's meta sidecar (when the server wired one) rides
        # along as a v2 image, so a resync restores client flags too.
        count = write_snapshot(self.cache, buffer, meta=self.manager.meta)
        image = buffer.getvalue()
        session.reset_stream_counters()
        writer.write(
            wire.encode_frame(
                wire.SNAP_BEGIN, wire.encode_position(*position)
            )
        )
        for start in range(0, len(image), wire.SNAPSHOT_CHUNK_BYTES):
            chunk = image[start : start + wire.SNAPSHOT_CHUNK_BYTES]
            writer.write(wire.encode_frame(wire.SNAP_CHUNK, chunk))
            await self._drain(writer)
        writer.write(wire.encode_snap_end(count))
        await self._drain(writer)
        self.stats.snapshots_sent += 1
        return position

    async def _send_loop(
        self,
        writer: asyncio.StreamWriter,
        session: _ReplicaSession,
        tailer: JournalTailer,
    ) -> None:
        loop = asyncio.get_running_loop()
        last_heartbeat = 0.0
        while not session.closed:
            now = loop.time()
            if now - last_heartbeat >= self.heartbeat_interval:
                backlog = (
                    session.queue_bytes
                    if session.live
                    else self._backlog_on_disk(session.sent_pos)
                )
                writer.write(
                    wire.encode_heartbeat(
                        session.sent_bytes, backlog, *session.sent_pos
                    )
                )
                await self._drain(writer)
                self.stats.heartbeats_sent += 1
                last_heartbeat = now

            if session.live:
                if session.queue:
                    sent = bytearray()
                    while session.queue and len(sent) < 1 << 20:
                        payload, seg, end = session.queue.popleft()
                        session.queue_bytes -= len(payload)
                        sent += wire.encode_record_frame(seg, end, payload)
                        session.sent_bytes += len(payload)
                        session.sent_pos = (seg, end)
                        self.stats.records_sent += 1
                        self.stats.bytes_sent += len(payload)
                    try:
                        writer.write(bytes(sent))
                        await self._drain(writer)
                    except asyncio.TimeoutError:
                        self.stats.slow_replica_drops += 1
                        return
                    continue
                # The flush tick: sleep at most flush_interval, so any
                # records that arrive while we sleep ship in one batch on
                # the next pass.  Appends do not wake us (see _on_append)
                # unless they pile up past flush_bytes.
                timeout = max(
                    0.001,
                    min(
                        self.flush_interval,
                        self.heartbeat_interval
                        - (loop.time() - last_heartbeat),
                    ),
                )
                session.event.clear()
                try:
                    await asyncio.wait_for(session.event.wait(), timeout)
                except asyncio.TimeoutError:
                    pass
                continue

            # File-tail mode.
            try:
                batch = tailer.read_batch()
            except SegmentPrunedError:
                segment, offset = await self._send_snapshot(writer, session)
                tailer.close()
                tailer = JournalTailer(
                    self.manager.config.directory, segment, offset
                )
                session.sent_pos = tailer.position
                continue
            if batch:
                sent = bytearray()
                for _op, _key, _value, payload, seg, end in batch:
                    sent += wire.encode_record_frame(seg, end, payload)
                    session.sent_bytes += len(payload)
                    session.sent_pos = (seg, end)
                    self.stats.records_sent += 1
                    self.stats.bytes_sent += len(payload)
                try:
                    writer.write(bytes(sent))
                    await self._drain(writer)
                except asyncio.TimeoutError:
                    self.stats.slow_replica_drops += 1
                    return
                continue
            # Caught up with the on-disk tail.  This check and the switch
            # to live mode run in one event-loop slice, so no append can
            # slip between them.
            if tailer.position == self.manager.writer.position:
                session.live = True
                session.event.clear()
                timeout = max(
                    0.001,
                    min(
                        self.flush_interval,
                        self.heartbeat_interval
                        - (loop.time() - last_heartbeat),
                    ),
                )
                try:
                    await asyncio.wait_for(session.event.wait(), timeout)
                except asyncio.TimeoutError:
                    pass

    def _backlog_on_disk(self, position: Tuple[int, int]) -> int:
        """Approximate on-disk bytes between ``position`` and the writer."""
        writer_seq, writer_off = self.manager.writer.position
        seg, off = position
        if seg >= writer_seq:
            return max(0, writer_off - off) if seg == writer_seq else 0
        total = 0
        magic = len(SEGMENT_MAGIC)
        for seq, path in list_segments(self.manager.config.directory):
            if seq < seg or seq > writer_seq:
                continue
            if seq == writer_seq:
                total += max(0, writer_off - magic)
                continue
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            total += max(0, size - (off if seq == seg else magic))
        return total

    async def _ack_loop(
        self, reader: asyncio.StreamReader, session: _ReplicaSession
    ) -> None:
        try:
            while True:
                frame = await wire.read_frame(reader)
                if frame is None:
                    break
                frame_type, body = frame
                if frame_type != wire.ACK:
                    continue
                applied_bytes, seg, off = wire.decode_ack(body)
                session.acked_bytes = applied_bytes
                session.acked_pos = (seg, off)
                self.stats.acks_received += 1
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass
        except Exception:
            pass
        finally:
            session.closed = True
            session.event.set()
