"""Follow a live journal directory from a (segment, offset) position.

The primary's replication sender and a promoting replica's catch-up both
need the same primitive: "give me every whole record after position P,
across segment rotations, and tell me when P has been pruned out from
under me".  The tailer provides it without any coordination with the
writer beyond the on-disk ordering the writer already guarantees:

* the writer closes (and flushes) a segment *before* creating its
  successor, so once ``journal-N+1.wal`` exists, ``journal-N.wal`` is
  final — a tailer that has consumed N to EOF may hand off;
* records never straddle segments (rotation happens before an append
  that would not fit), so the handoff point is always a frame boundary;
* a short or CRC-failing record at the end of the *newest* segment is a
  write in progress (or, for a dead primary's directory, an unacked torn
  tail) — the tailer stops cleanly before it and will resume if more
  bytes arrive;
* checkpoint pruning deletes old segments; if the tailer's current
  segment is gone while newer ones exist, the position is unrecoverable
  from the journal alone and :class:`SegmentPrunedError` tells the
  caller to fall back to a checkpoint-image resync.
"""

from __future__ import annotations

import os
import zlib
from typing import List, Optional, Tuple

from repro.common.errors import JournalError
from repro.durability.journal import (
    SEGMENT_MAGIC,
    _FRAME_LEN,
    decode_payload,
    list_segments,
    segment_name,
)


class SegmentPrunedError(JournalError):
    """The tailer's position was pruned; resync from a checkpoint image."""


#: One tailed record: (op, key, value, payload, segment, end_offset).
TailedRecord = Tuple[int, bytes, bytes, bytes, int, int]


class JournalTailer:
    """Read whole records from a journal directory, following rotations.

    ``offset`` 0 (or anything below the magic) means "start of segment".
    The tailer never blocks: :meth:`read_batch` returns what is on disk
    right now and the caller decides how to wait for more (the
    replication source wakes on the writer's append listener).
    """

    def __init__(self, directory: str, segment: int, offset: int = 0) -> None:
        self.directory = os.fspath(directory)
        self.segment = segment
        self.offset = max(offset, len(SEGMENT_MAGIC))
        self._stream = None

    @property
    def position(self) -> Tuple[int, int]:
        return self.segment, self.offset

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    # -- internals -------------------------------------------------------------

    def _segment_path(self, seq: int) -> str:
        return os.path.join(self.directory, segment_name(seq))

    def _open_current(self) -> bool:
        """Ensure the current segment is open and positioned; False if absent."""
        if self._stream is not None:
            return True
        path = self._segment_path(self.segment)
        try:
            stream = open(path, "rb")
        except FileNotFoundError:
            return False
        magic = stream.read(len(SEGMENT_MAGIC))
        if magic != SEGMENT_MAGIC:
            stream.close()
            raise JournalError(
                f"bad magic in tailed segment {segment_name(self.segment)}: "
                f"{magic!r}"
            )
        stream.seek(self.offset)
        self._stream = stream
        return True

    def _next_segment(self) -> Optional[int]:
        """Smallest on-disk seq > current, or None."""
        later = [
            seq for seq, _path in list_segments(self.directory)
            if seq > self.segment
        ]
        return min(later) if later else None

    def _read_one(self) -> Optional[Tuple[int, bytes, bytes, bytes]]:
        """One whole record at the current offset, or None (partial/EOF).

        A partial frame is left untouched (the stream is rewound) so the
        next call retries once the writer has finished it.  A CRC failure
        is also treated as "no more": on a live primary it can only be a
        torn in-progress write; on a dead primary's directory it is the
        unacked torn tail recovery would truncate anyway.
        """
        stream = self._stream
        assert stream is not None
        start = self.offset
        header = stream.read(_FRAME_LEN.size)
        if len(header) != _FRAME_LEN.size:
            stream.seek(start)
            return None
        (payload_len,) = _FRAME_LEN.unpack(header)
        body = stream.read(payload_len + _FRAME_LEN.size)
        if len(body) != payload_len + _FRAME_LEN.size:
            stream.seek(start)
            return None
        payload, trailer = body[:payload_len], body[payload_len:]
        (stored_crc,) = _FRAME_LEN.unpack(trailer)
        if stored_crc != zlib.crc32(payload):
            stream.seek(start)
            return None
        op, key, value = decode_payload(payload)
        self.offset = start + _FRAME_LEN.size * 2 + payload_len
        return op, key, value, payload

    # -- the read loop ---------------------------------------------------------

    def read_batch(self, max_records: int = 256) -> List[TailedRecord]:
        """Up to ``max_records`` whole records at/after the position.

        Returns an empty list when caught up with the on-disk tail.
        Raises :class:`SegmentPrunedError` when the position's segment no
        longer exists (checkpoint pruning passed it), and plain
        :class:`JournalError` for at-rest damage in a *non-tail* spot
        (bad magic), which no amount of waiting will fix.
        """
        out: List[TailedRecord] = []
        while len(out) < max_records:
            if not self._open_current():
                if self._next_segment() is not None or self._has_checkpoints():
                    raise SegmentPrunedError(
                        f"segment {segment_name(self.segment)} pruned under "
                        "the tailer; checkpoint resync required"
                    )
                # Nothing newer on disk either: the writer simply has not
                # created this segment yet (we are positioned at its start).
                return out
            record = self._read_one()
            if record is not None:
                op, key, value, payload = record
                out.append((op, key, value, payload, self.segment, self.offset))
                continue
            # No whole record here.  Hand off iff a newer segment exists —
            # the writer never touches this one again — and we have truly
            # consumed it (anything left is a torn unacked tail, which the
            # writer's close-before-create ordering makes impossible on a
            # live rotation, and recovery truncates on a dead one).
            next_seq = self._next_segment()
            if next_seq is None:
                return out
            self.close()
            self.segment = next_seq
            self.offset = len(SEGMENT_MAGIC)
        return out

    def _has_checkpoints(self) -> bool:
        from repro.durability.manager import list_checkpoints

        return bool(list_checkpoints(self.directory))
