"""Journal-shipping replication: primary/replica pairs over the WAL.

The PR 6 write-ahead journal is already a total order of acknowledged
mutations; this package ships it.  See :mod:`repro.replication.wire` for
the frame protocol, :mod:`repro.replication.source` for the primary's
sender (live queue -> file tail -> snapshot resync), and
:mod:`repro.replication.replica` for the applying side, lag tracking,
and consensus-free promotion.
"""

from repro.replication.replica import (
    ReplicationClient,
    catch_up_from_directory,
)
from repro.replication.source import ReplicationSource
from repro.replication.stats import ReplicationStats
from repro.replication.tailer import JournalTailer, SegmentPrunedError

__all__ = [
    "JournalTailer",
    "ReplicationClient",
    "ReplicationSource",
    "ReplicationStats",
    "SegmentPrunedError",
    "catch_up_from_directory",
]
