"""Data-plane trace replay.

Drives a cache (:class:`~repro.core.zexpander.ZExpander` or
:class:`~repro.core.simple.SimpleKVCache`) with a compact trace, supplying
real value bytes and advancing the virtual clock at a configured request
rate.  GET misses are demand-filled (the client fetches from the backing
store and SETs the result), matching how the paper's replayer keeps the
cache populated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.common.clock import VirtualClock
from repro.workloads.trace import OP_DELETE, OP_GET, OP_SET, Trace
from repro.workloads.values import ValueSource


@dataclass
class ReplayStats:
    """Measurement-phase outcome of one replay."""

    gets: int = 0
    get_misses: int = 0
    sets: int = 0
    deletes: int = 0
    demand_fills: int = 0

    @property
    def requests(self) -> int:
        return self.gets + self.sets + self.deletes

    @property
    def miss_ratio(self) -> float:
        denominator = self.gets + self.sets
        if denominator == 0:
            return 0.0
        return self.get_misses / denominator


def replay_trace(
    cache,
    trace: Trace,
    value_source: ValueSource,
    clock: Optional[VirtualClock] = None,
    request_rate: float = 100_000.0,
    warmup_fraction: float = 0.2,
    demand_fill: bool = True,
    on_request: Optional[Callable[[int, int], None]] = None,
) -> ReplayStats:
    """Replay ``trace`` against ``cache`` with real bytes.

    ``request_rate`` (requests/second) sets how far the virtual clock
    advances per request, which scales every time-based policy (marker
    ages, adaptation windows).  ``on_request(position, op)`` is called
    after each request for timeline instrumentation.
    """
    if request_rate <= 0:
        raise ValueError(f"request_rate must be positive, got {request_rate}")
    warmup = int(len(trace) * warmup_fraction)
    tick = 1.0 / request_rate
    stats = ReplayStats()
    for position, (op, key_id, _size) in enumerate(trace):
        if clock is not None:
            clock.advance(tick)
        key = trace.key_bytes(key_id)
        measuring = position >= warmup
        if op == OP_GET:
            value = cache.get(key)
            if measuring:
                stats.gets += 1
                if value is None:
                    stats.get_misses += 1
            if value is None and demand_fill:
                cache.set(key, value_source.value(key_id))
                if measuring:
                    stats.demand_fills += 1
        elif op == OP_SET:
            cache.set(key, value_source.value(key_id))
            if measuring:
                stats.sets += 1
        elif op == OP_DELETE:
            cache.delete(key)
            if measuring:
                stats.deletes += 1
        if on_request is not None:
            on_request(position, op)
    return stats
