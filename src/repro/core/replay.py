"""Data-plane trace replay.

Drives a cache (:class:`~repro.core.zexpander.ZExpander` or
:class:`~repro.core.simple.SimpleKVCache`) with a compact trace, supplying
real value bytes and advancing the virtual clock at a configured request
rate.  GET misses are demand-filled (the client fetches from the backing
store and SETs the result), matching how the paper's replayer keeps the
cache populated.

Two equivalent drivers live here:

* :func:`_replay_reference` — the straightforward per-entry loop, kept as
  the semantic reference and used whenever a caller needs the
  ``on_request`` instrumentation hook.
* :func:`_replay_batched` — the default hot path.  It pulls the trace out
  as numpy arrays once, pre-renders every distinct key's wire bytes, and
  splits the warmup and measurement phases into separate loops with local
  counters, so the per-request work is exactly the cache calls themselves.

Both produce identical :class:`ReplayStats` and drive the cache with an
identical request sequence; ``tests/core/test_replay_paths.py`` pins that.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.common.clock import VirtualClock
from repro.workloads.trace import OP_DELETE, OP_GET, OP_SET, Trace
from repro.workloads.values import ValueSource


@dataclass
class ReplayStats:
    """Measurement-phase outcome of one replay."""

    gets: int = 0
    get_misses: int = 0
    sets: int = 0
    deletes: int = 0
    demand_fills: int = 0

    @property
    def requests(self) -> int:
        return self.gets + self.sets + self.deletes

    @property
    def miss_ratio(self) -> float:
        denominator = self.gets + self.sets
        if denominator == 0:
            return 0.0
        return self.get_misses / denominator


#: Sample every Nth measured request into the latency histogram when a
#: registry is supplied; amortises the two timer calls far below the
#: per-request cache work (the 5 % metrics-overhead budget).
LATENCY_SAMPLE_EVERY = 64


class _ReplayMetrics:
    """Instrument bundle for one replay; no-op when registry is off."""

    def __init__(self, registry) -> None:
        self.timer = time.perf_counter
        self.latency = registry.histogram(
            "replay_request_seconds",
            "sampled per-request wall latency (measured phase)",
            timing=True,
        )
        self.warmup_seconds = registry.gauge(
            "replay_warmup_seconds", "wall time of the warmup phase", timing=True
        )
        self.measured_seconds = registry.gauge(
            "replay_measured_seconds",
            "wall time of the measured phase",
            timing=True,
        )
        self.registry = registry

    def finish(self, stats: "ReplayStats") -> None:
        """Mount the finished stats so the snapshot carries the tallies."""
        self.registry.mount("replay", stats, replace=True)


def replay_trace(
    cache,
    trace: Trace,
    value_source: ValueSource,
    clock: Optional[VirtualClock] = None,
    request_rate: float = 100_000.0,
    warmup_fraction: float = 0.2,
    demand_fill: bool = True,
    on_request: Optional[Callable[[int, int], None]] = None,
    batched: bool = True,
    faults=None,
    registry=None,
) -> ReplayStats:
    """Replay ``trace`` against ``cache`` with real bytes.

    ``request_rate`` (requests/second) sets how far the virtual clock
    advances per request, which scales every time-based policy (marker
    ages, adaptation windows).  ``on_request(position, op)`` is called
    after each request for timeline instrumentation; supplying it routes
    the replay through the per-entry reference loop, as does
    ``batched=False``.  ``faults`` (a duck-typed
    :class:`~repro.faults.injector.FaultInjector`) gets
    ``on_request(position, clock=, cache=)`` *before* each request so it
    can skew the clock or squeeze capacity; it also forces the reference
    loop.  ``registry`` (a :class:`~repro.metrics.MetricsRegistry`)
    collects per-phase wall timings, the final request tallies, and a
    sampled per-request latency histogram; it never changes the request
    sequence the cache sees, and a disabled registry costs nothing.
    """
    if request_rate <= 0:
        raise ValueError(f"request_rate must be positive, got {request_rate}")
    metrics = _ReplayMetrics(registry) if registry else None
    if not batched or on_request is not None or faults is not None:
        stats = _replay_reference(
            cache,
            trace,
            value_source,
            clock,
            request_rate,
            warmup_fraction,
            demand_fill,
            on_request,
            faults,
            metrics,
        )
    else:
        stats = _replay_batched(
            cache,
            trace,
            value_source,
            clock,
            request_rate,
            warmup_fraction,
            demand_fill,
            metrics,
        )
    if metrics is not None:
        metrics.finish(stats)
    return stats


def _replay_reference(
    cache,
    trace: Trace,
    value_source: ValueSource,
    clock: Optional[VirtualClock],
    request_rate: float,
    warmup_fraction: float,
    demand_fill: bool,
    on_request: Optional[Callable[[int, int], None]],
    faults=None,
    metrics: Optional["_ReplayMetrics"] = None,
) -> ReplayStats:
    """Per-entry loop: one branch tree per request, stats updated inline."""
    warmup = int(len(trace) * warmup_fraction)
    tick = 1.0 / request_rate
    stats = ReplayStats()
    timer = metrics.timer if metrics is not None else None
    phase_started = timer() if timer is not None else 0.0
    for position, (op, key_id, _size) in enumerate(trace):
        if clock is not None:
            clock.advance(tick)
        if faults is not None:
            faults.on_request(position, clock=clock, cache=cache)
        key = trace.key_bytes(key_id)
        measuring = position >= warmup
        started = None
        if timer is not None and measuring:
            if position == warmup:
                metrics.warmup_seconds.set(timer() - phase_started)
                phase_started = timer()
            if (position - warmup) % LATENCY_SAMPLE_EVERY == 0:
                started = timer()
        if op == OP_GET:
            value = cache.get(key)
            if measuring:
                stats.gets += 1
                if value is None:
                    stats.get_misses += 1
            if value is None and demand_fill:
                cache.set(key, value_source.value(key_id))
                if measuring:
                    stats.demand_fills += 1
        elif op == OP_SET:
            cache.set(key, value_source.value(key_id))
            if measuring:
                stats.sets += 1
        elif op == OP_DELETE:
            cache.delete(key)
            if measuring:
                stats.deletes += 1
        if started is not None:
            metrics.latency.observe(timer() - started)
        if on_request is not None:
            on_request(position, op)
    if timer is not None:
        metrics.measured_seconds.set(timer() - phase_started)
    return stats


def _replay_batched(
    cache,
    trace: Trace,
    value_source: ValueSource,
    clock: Optional[VirtualClock],
    request_rate: float,
    warmup_fraction: float,
    demand_fill: bool,
    metrics: Optional["_ReplayMetrics"] = None,
) -> ReplayStats:
    """Array-driven loop: same request sequence, minimal per-request work.

    The trace's op/key columns are materialised once as plain Python ints
    (``tolist`` on the numpy views), wire keys are pre-rendered per
    distinct key id, and the warmup prefix runs in a counter-free loop.
    With ``metrics``, the measured phase runs an instrumented twin of the
    same loop (identical cache calls; every ``LATENCY_SAMPLE_EVERY``-th
    request is timed) so the metrics-off path stays branch-free.
    """
    warmup = int(len(trace) * warmup_fraction)
    tick = 1.0 / request_rate
    ops_arr, keys_arr, _sizes = trace.as_arrays()
    op_list = ops_arr.tolist()
    key_list = keys_arr.tolist()
    prefix = trace.key_prefix
    key_bytes = {
        key_id: prefix + b"%012d" % key_id
        for key_id in np.unique(keys_arr).tolist()
    }
    advance = clock.advance if clock is not None else None
    cache_get = cache.get
    cache_set = cache.set
    cache_delete = cache.delete
    fill_value = value_source.value

    timer = metrics.timer if metrics is not None else None
    phase_started = timer() if timer is not None else 0.0

    # Warmup prefix: drive the cache, count nothing.
    for op, key_id in zip(op_list[:warmup], key_list[:warmup]):
        if advance is not None:
            advance(tick)
        key = key_bytes[key_id]
        if op == OP_GET:
            if cache_get(key) is None and demand_fill:
                cache_set(key, fill_value(key_id))
        elif op == OP_SET:
            cache_set(key, fill_value(key_id))
        elif op == OP_DELETE:
            cache_delete(key)

    if timer is not None:
        metrics.warmup_seconds.set(timer() - phase_started)
        phase_started = timer()

    gets = get_misses = sets = deletes = demand_fills = 0
    if timer is None:
        for op, key_id in zip(op_list[warmup:], key_list[warmup:]):
            if advance is not None:
                advance(tick)
            key = key_bytes[key_id]
            if op == OP_GET:
                gets += 1
                if cache_get(key) is None:
                    get_misses += 1
                    if demand_fill:
                        cache_set(key, fill_value(key_id))
                        demand_fills += 1
            elif op == OP_SET:
                cache_set(key, fill_value(key_id))
                sets += 1
            elif op == OP_DELETE:
                cache_delete(key)
                deletes += 1
    else:
        observe = metrics.latency.observe
        countdown = 0
        for op, key_id in zip(op_list[warmup:], key_list[warmup:]):
            if advance is not None:
                advance(tick)
            key = key_bytes[key_id]
            if countdown == 0:
                countdown = LATENCY_SAMPLE_EVERY
                started = timer()
            else:
                started = None
            countdown -= 1
            if op == OP_GET:
                gets += 1
                if cache_get(key) is None:
                    get_misses += 1
                    if demand_fill:
                        cache_set(key, fill_value(key_id))
                        demand_fills += 1
            elif op == OP_SET:
                cache_set(key, fill_value(key_id))
                sets += 1
            elif op == OP_DELETE:
                cache_delete(key)
                deletes += 1
            if started is not None:
                observe(timer() - started)
        metrics.measured_seconds.set(timer() - phase_started)
    return ReplayStats(
        gets=gets,
        get_misses=get_misses,
        sets=sets,
        deletes=deletes,
        demand_fills=demand_fills,
    )
