"""Data-plane trace replay.

Drives a cache (:class:`~repro.core.zexpander.ZExpander` or
:class:`~repro.core.simple.SimpleKVCache`) with a compact trace, supplying
real value bytes and advancing the virtual clock at a configured request
rate.  GET misses are demand-filled (the client fetches from the backing
store and SETs the result), matching how the paper's replayer keeps the
cache populated.

Two equivalent drivers live here:

* :func:`_replay_reference` — the straightforward per-entry loop, kept as
  the semantic reference and used whenever a caller needs the
  ``on_request`` instrumentation hook.
* :func:`_replay_batched` — the default hot path.  It pulls the trace out
  as numpy arrays once, pre-renders every distinct key's wire bytes, and
  splits the warmup and measurement phases into separate loops with local
  counters, so the per-request work is exactly the cache calls themselves.

Both produce identical :class:`ReplayStats` and drive the cache with an
identical request sequence; ``tests/core/test_replay_paths.py`` pins that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.common.clock import VirtualClock
from repro.workloads.trace import OP_DELETE, OP_GET, OP_SET, Trace
from repro.workloads.values import ValueSource


@dataclass
class ReplayStats:
    """Measurement-phase outcome of one replay."""

    gets: int = 0
    get_misses: int = 0
    sets: int = 0
    deletes: int = 0
    demand_fills: int = 0

    @property
    def requests(self) -> int:
        return self.gets + self.sets + self.deletes

    @property
    def miss_ratio(self) -> float:
        denominator = self.gets + self.sets
        if denominator == 0:
            return 0.0
        return self.get_misses / denominator


def replay_trace(
    cache,
    trace: Trace,
    value_source: ValueSource,
    clock: Optional[VirtualClock] = None,
    request_rate: float = 100_000.0,
    warmup_fraction: float = 0.2,
    demand_fill: bool = True,
    on_request: Optional[Callable[[int, int], None]] = None,
    batched: bool = True,
    faults=None,
) -> ReplayStats:
    """Replay ``trace`` against ``cache`` with real bytes.

    ``request_rate`` (requests/second) sets how far the virtual clock
    advances per request, which scales every time-based policy (marker
    ages, adaptation windows).  ``on_request(position, op)`` is called
    after each request for timeline instrumentation; supplying it routes
    the replay through the per-entry reference loop, as does
    ``batched=False``.  ``faults`` (a duck-typed
    :class:`~repro.faults.injector.FaultInjector`) gets
    ``on_request(position, clock=, cache=)`` *before* each request so it
    can skew the clock or squeeze capacity; it also forces the reference
    loop.
    """
    if request_rate <= 0:
        raise ValueError(f"request_rate must be positive, got {request_rate}")
    if not batched or on_request is not None or faults is not None:
        return _replay_reference(
            cache,
            trace,
            value_source,
            clock,
            request_rate,
            warmup_fraction,
            demand_fill,
            on_request,
            faults,
        )
    return _replay_batched(
        cache,
        trace,
        value_source,
        clock,
        request_rate,
        warmup_fraction,
        demand_fill,
    )


def _replay_reference(
    cache,
    trace: Trace,
    value_source: ValueSource,
    clock: Optional[VirtualClock],
    request_rate: float,
    warmup_fraction: float,
    demand_fill: bool,
    on_request: Optional[Callable[[int, int], None]],
    faults=None,
) -> ReplayStats:
    """Per-entry loop: one branch tree per request, stats updated inline."""
    warmup = int(len(trace) * warmup_fraction)
    tick = 1.0 / request_rate
    stats = ReplayStats()
    for position, (op, key_id, _size) in enumerate(trace):
        if clock is not None:
            clock.advance(tick)
        if faults is not None:
            faults.on_request(position, clock=clock, cache=cache)
        key = trace.key_bytes(key_id)
        measuring = position >= warmup
        if op == OP_GET:
            value = cache.get(key)
            if measuring:
                stats.gets += 1
                if value is None:
                    stats.get_misses += 1
            if value is None and demand_fill:
                cache.set(key, value_source.value(key_id))
                if measuring:
                    stats.demand_fills += 1
        elif op == OP_SET:
            cache.set(key, value_source.value(key_id))
            if measuring:
                stats.sets += 1
        elif op == OP_DELETE:
            cache.delete(key)
            if measuring:
                stats.deletes += 1
        if on_request is not None:
            on_request(position, op)
    return stats


def _replay_batched(
    cache,
    trace: Trace,
    value_source: ValueSource,
    clock: Optional[VirtualClock],
    request_rate: float,
    warmup_fraction: float,
    demand_fill: bool,
) -> ReplayStats:
    """Array-driven loop: same request sequence, minimal per-request work.

    The trace's op/key columns are materialised once as plain Python ints
    (``tolist`` on the numpy views), wire keys are pre-rendered per
    distinct key id, and the warmup prefix runs in a counter-free loop.
    """
    warmup = int(len(trace) * warmup_fraction)
    tick = 1.0 / request_rate
    ops_arr, keys_arr, _sizes = trace.as_arrays()
    op_list = ops_arr.tolist()
    key_list = keys_arr.tolist()
    prefix = trace.key_prefix
    key_bytes = {
        key_id: prefix + b"%012d" % key_id
        for key_id in np.unique(keys_arr).tolist()
    }
    advance = clock.advance if clock is not None else None
    cache_get = cache.get
    cache_set = cache.set
    cache_delete = cache.delete
    fill_value = value_source.value

    # Warmup prefix: drive the cache, count nothing.
    for op, key_id in zip(op_list[:warmup], key_list[:warmup]):
        if advance is not None:
            advance(tick)
        key = key_bytes[key_id]
        if op == OP_GET:
            if cache_get(key) is None and demand_fill:
                cache_set(key, fill_value(key_id))
        elif op == OP_SET:
            cache_set(key, fill_value(key_id))
        elif op == OP_DELETE:
            cache_delete(key)

    gets = get_misses = sets = deletes = demand_fills = 0
    for op, key_id in zip(op_list[warmup:], key_list[warmup:]):
        if advance is not None:
            advance(tick)
        key = key_bytes[key_id]
        if op == OP_GET:
            gets += 1
            if cache_get(key) is None:
                get_misses += 1
                if demand_fill:
                    cache_set(key, fill_value(key_id))
                    demand_fills += 1
        elif op == OP_SET:
            cache_set(key, fill_value(key_id))
            sets += 1
        elif op == OP_DELETE:
            cache_delete(key)
            deletes += 1
    return ReplayStats(
        gets=gets,
        get_misses=get_misses,
        sets=sets,
        deletes=deletes,
        demand_fills=demand_fills,
    )
