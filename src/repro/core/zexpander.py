"""The zExpander cache (§3).

Request routing (§3):

* GET — try the N-zone; on miss, try the Z-zone.  A Z-zone hit may promote
  the item into the N-zone if its measured re-use time beats the N-zone's
  locality benchmark (§3.3.2).
* SET — always admitted by the N-zone.  If an older version may live in
  the Z-zone (Content-Filter check), its removal is postponed by at least
  the locality benchmark so it can be merged with a future eviction
  (§3.3.2).
* DELETE — performed at both zones.
* N-zone evictions are admitted into the Z-zone (demotion); marker keys
  are intercepted instead and update the benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.clock import VirtualClock
from repro.common.errors import ItemTooLargeError
from repro.common.hashing import hash_key
from repro.core.adaptive import AdaptiveAllocator
from repro.core.config import ZExpanderConfig
from repro.core.expiry import ExpiryIndex
from repro.core.marker import LocalityBenchmark, MARKER_VALUE, is_marker_key
from repro.core.stats import ZExpanderStats
from repro.nzone.base import EvictedItem, NZone
from repro.nzone.hpcache import HPCacheZone
from repro.zzone.zzone import ZZone


class ZExpander:
    """Two-zone KV cache: fast N-zone + compressed Z-zone."""

    def __init__(
        self,
        config: ZExpanderConfig,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.clock = clock if clock is not None else VirtualClock()
        self.stats = ZExpanderStats()
        nzone_capacity = int(config.total_capacity * config.nzone_fraction)
        factory = config.nzone_factory or (
            lambda capacity: HPCacheZone(capacity, seed=config.seed)
        )
        self.nzone: NZone = factory(nzone_capacity)
        #: Armed only by a configured fault plan; ``None`` in production
        #: paths, so chaos machinery costs a single attribute.
        self.fault_injector = None
        #: Write-ahead journal attached by the durability layer; ``None``
        #: (the default) keeps set/delete to one attribute test.
        self.journal = None
        compressor = config.compressor
        if config.fault_plan is not None:
            from repro.compression.zlibc import ZlibCompressor
            from repro.faults.codec import FaultyCompressor
            from repro.faults.injector import FaultInjector

            self.fault_injector = FaultInjector(config.fault_plan)
            inner = compressor if compressor is not None else ZlibCompressor()
            compressor = FaultyCompressor(inner, self.fault_injector)
        self.zzone = ZZone(
            capacity=config.total_capacity - nzone_capacity,
            compressor=compressor,
            block_capacity=config.block_capacity,
            clock=self.clock,
            seed=config.seed,
            use_content_filter=config.use_content_filter,
            use_access_filter=config.use_access_filter,
            verify_checksums=config.verify_checksums,
            faults=self.fault_injector,
            append_region_bytes=config.append_region_bytes,
            decompressed_cache_blocks=config.decompressed_cache_blocks,
        )
        self.benchmark = LocalityBenchmark(config.benchmark_weights)
        self.allocator: Optional[AdaptiveAllocator] = None
        if config.adaptive:
            self.allocator = AdaptiveAllocator(
                total_capacity=config.total_capacity,
                initial_nzone_target=nzone_capacity,
                target_fraction=config.target_service_fraction,
                slack=config.service_fraction_slack,
                step_fraction=config.adjustment_step,
                window_seconds=config.window_seconds,
                min_zone_fraction=config.min_zone_fraction,
            )
        self._last_marker_time: Optional[float] = None
        self._marker_interval = config.marker_interval_seconds
        self._expiry = ExpiryIndex()

    # -- public API ----------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Look up ``key``; N-zone first, then the Z-zone.

        Expired keys answer None and are removed (lazy expiration, as in
        memcached).
        """
        return self._get_one(key, None)

    def get_many(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        """Batched lookup, result- and stats-identical to a :meth:`get` loop.

        Each key runs the exact per-key control flow of :meth:`get` —
        N-zone probe first, expiry, promotion, housekeeping, all in caller
        order — but N-zone misses share one Z-zone :class:`ReadBatch`, so
        a block whose container serves several keys of the batch is
        physically decompressed and CRC-verified once
        (``container_decodes_saved`` counts the skipped decodes).  Only
        ``get_many_batches``/``batched_keys`` distinguish the stats from
        the equivalent sequential loop.
        """
        self.stats.get_many_batches += 1
        self.stats.batched_keys += len(keys)
        batch = self.zzone.read_batch()
        return [self._get_one(key, batch) for key in keys]

    def _get_one(self, key: bytes, batch) -> Optional[bytes]:
        """Shared GET body; ``batch`` is a Z-zone ReadBatch or None."""
        self._housekeeping()
        self.stats.gets += 1
        if self._expiry and self._expiry.is_expired(key, self.clock.now()):
            self._expire(key)
            self.stats.get_misses += 1
            return None
        value = self.nzone.get(key)
        if value is not None:
            self.stats.get_hits_nzone += 1
            self._record_service(nzone=True)
            return value
        hashed = hash_key(key)
        if batch is None:
            result = self.zzone.get(key, hashed)
        else:
            result = self.zzone.get_batched(key, hashed, batch)
        if result is None:
            self.stats.get_misses += 1
            # Filter-identified misses are cheap and count for neither
            # zone (§3.3.1); a false positive did cost a decompression.
            return None
        zvalue, reuse_time = result
        self.stats.get_hits_zzone += 1
        self._record_service(nzone=False)
        if self._should_promote(reuse_time):
            self._promote(key, hashed, zvalue)
        return zvalue

    def set(
        self,
        key: bytes,
        value: bytes,
        ttl: Optional[float] = None,
        flags: int = 0,
    ) -> None:
        """Insert or update ``key``; always admitted by the N-zone.

        ``ttl`` (seconds) bounds the item's lifetime; omitting it on an
        overwrite clears any previous TTL, matching memcached semantics
        where every SET carries its own exptime.  ``flags`` is opaque
        client metadata the cache itself does not store (the server's
        sidecar does) — it is accepted here only so the write-through
        journal records it for recovery.
        """
        self._housekeeping()
        self.stats.sets += 1
        self._record_service(nzone=True)
        if ttl is not None:
            if ttl <= 0:
                raise ValueError(f"ttl must be positive, got {ttl}")
            self._expiry.set(key, self.clock.now() + ttl)
        elif self._expiry:
            self._expiry.clear(key)
        hashed = hash_key(key)
        # Postpone removal of a stale Z-zone version (§3.3.2): if the item
        # is evicted before the deadline the removal merges with the write.
        if self.zzone.maybe_contains(key, hashed):
            delay = self.benchmark.value or 0.0
            self.zzone.schedule_removal(key, hashed, self.clock.now() + delay)
            self.stats.postponed_removals += 1
        self._set_into_nzone(key, value)
        # Journal only after the in-memory write succeeded: a rolled-back
        # SET was never acknowledged and must not resurrect at recovery.
        if self.journal is not None:
            self.journal.append_set(key, value, flags)

    def delete(self, key: bytes) -> bool:
        """Remove ``key`` from both zones (§3)."""
        self._housekeeping()
        self.stats.deletes += 1
        if self._expiry:
            self._expiry.clear(key)
        in_n = self.nzone.delete(key)
        hashed = hash_key(key)
        was_expensive = self.zzone.maybe_contains(key, hashed)
        in_z = self.zzone.delete(key, hashed)
        if in_n or was_expensive:
            self._record_service(nzone=not was_expensive)
        # Journal every acknowledged delete, found or not: the key may
        # live on in an earlier journal segment or checkpoint (e.g. it
        # was evicted here), and replay must not resurrect it.
        if self.journal is not None:
            self.journal.append_delete(key)
        return in_n or in_z

    def attach_journal(self, journal) -> None:
        """Write-through durability: journal every acknowledged mutation.

        Attach *after* any snapshot/journal recovery has finished, so
        replayed records are not re-journaled.  Detach with ``None``.
        """
        self.journal = journal

    def __contains__(self, key: bytes) -> bool:
        """Residency test without recency side effects (filters only for Z)."""
        if self._expiry and self._expiry.is_expired(key, self.clock.now()):
            return False
        return key in self.nzone or self.zzone.maybe_contains(key)

    def routes_to_zzone(self, key: bytes) -> bool:
        """Would a GET for ``key`` fall through to the Z-zone path?

        A Content-Filter pre-check with no recency or stats side effects:
        true when the key is absent from the N-zone, so serving it means
        Z-zone work (a decompression on a hit, a filter probe on a miss).
        The serving layer's load shedder uses this to drop expensive
        Z-zone-destined work first and keep the cheap N-zone path alive.
        """
        return key not in self.nzone and self.zzone.maybe_contains(key)

    @property
    def item_count(self) -> int:
        return self.nzone.item_count + self.zzone.item_count

    @property
    def used_bytes(self) -> int:
        return self.nzone.used_bytes + self.zzone.used_bytes

    @property
    def capacity(self) -> int:
        return self.config.total_capacity

    def memory_usage(self) -> Dict[str, Dict[str, int]]:
        """Per-zone byte breakdowns."""
        return {
            "nzone": self.nzone.memory_usage(),
            "zzone": self.zzone.memory_usage(),
        }

    def bind_metrics(self, registry, prefix: str = "cache") -> None:
        """Mount this cache's counters into a metrics registry.

        Every ``ZExpanderStats``/``ZZoneStats`` field (N/Z hits, sweeps,
        quarantines, adaptive steps, marker probes, ...) becomes a
        snapshot-time view — the request path keeps its plain attribute
        increments, so binding costs nothing per operation.
        """
        registry.mount(prefix, self.stats)
        registry.mount(f"{prefix}_zzone", self.zzone.stats)
        registry.view(
            f"{prefix}_used_bytes", lambda: self.used_bytes, "resident bytes"
        )
        registry.view(
            f"{prefix}_capacity_bytes", lambda: self.capacity, "total budget"
        )
        registry.view(
            f"{prefix}_item_count", lambda: self.item_count, "resident items"
        )
        registry.view(
            f"{prefix}_nzone_capacity_bytes",
            lambda: self.nzone.capacity,
            "current N-zone budget (moves under adaptation)",
        )
        registry.view(
            f"{prefix}_zzone_capacity_bytes",
            lambda: self.zzone.capacity,
            "current Z-zone budget (moves under adaptation)",
        )
        registry.view(
            f"{prefix}_locality_benchmark_seconds",
            lambda: self.benchmark.value or 0.0,
            "marker-measured re-use-time benchmark (0 until first sample)",
        )
        registry.view(
            f"{prefix}_zzone_container_cache_bytes",
            lambda: self.zzone.container_cache_bytes(),
            "decompressed-container cache scratch bytes (not charged "
            "to the cache budget)",
        )
        if self.allocator is not None:
            registry.view(
                f"{prefix}_nzone_target_bytes",
                lambda: self.allocator.nzone_target,
                "adaptive allocator's N-zone target",
            )

    # -- internals -------------------------------------------------------------

    def _record_service(self, nzone: bool) -> None:
        if nzone:
            self.stats.serviced_nzone += 1
            if self.allocator is not None:
                self.allocator.record_nzone()
        else:
            self.stats.serviced_zzone += 1
            if self.allocator is not None:
                self.allocator.record_zzone()

    def _should_promote(self, reuse_time: Optional[float]) -> bool:
        policy = self.config.promotion_policy
        if policy == "always":
            return True
        if policy == "never":
            return False
        if reuse_time is None:
            # First recorded access: record-only, never move (§3.3.2).
            return False
        benchmark = self.benchmark.value
        if benchmark is None:
            # No marker data yet: any observed re-use is treated as hot.
            return True
        if reuse_time < benchmark:
            return True
        self.stats.promotions_declined += 1
        return False

    def _promote(self, key: bytes, hashed: int, value: bytes) -> None:
        self.zzone.delete(key, hashed)
        self.stats.promotions += 1
        self._set_into_nzone(key, value)

    def _set_into_nzone(self, key: bytes, value: bytes) -> None:
        evicted = self.nzone.set(key, value)
        self._absorb_evictions(evicted)

    def _absorb_evictions(self, evicted: List[EvictedItem]) -> None:
        now = self.clock.now()
        for item in evicted:
            if is_marker_key(item.key):
                sample = self.benchmark.observe_eviction(item.key, now)
                if sample is not None:
                    self.stats.marker_samples += 1
                continue
            self.stats.demotions += 1
            self._record_service(nzone=False)
            try:
                self.zzone.put(item.key, item.value)
            except ItemTooLargeError:
                # Larger than the whole Z-zone: drop it, as any cache must.
                continue

    def _expire(self, key: bytes) -> None:
        """Drop an expired key from both zones."""
        self._expiry.clear(key)
        self.nzone.delete(key)
        hashed = hash_key(key)
        if self.zzone.maybe_contains(key, hashed):
            self.zzone.delete(key, hashed)
        self.stats.expirations += 1

    def _housekeeping(self) -> None:
        """Per-request upkeep, structured as cheap inline guards.

        This runs before every GET/SET/DELETE, so each subsystem is
        gated by the least work that can prove it idle: expiry by the
        index's emptiness, markers by a float comparison, adaptation by
        the allocator's presence.  The slow branches live in their own
        methods.
        """
        now = self.clock.now()
        if self._expiry:
            self._purge_due(now)
        last = self._last_marker_time
        if last is None:
            # Open the first interval without issuing: a marker written
            # into a still-cold N-zone would measure fill time, not
            # locality strength.
            self._last_marker_time = now
        elif now - last >= self._marker_interval:
            self._issue_marker(now)
        if self.allocator is not None:
            self._maybe_adapt(now)

    def _purge_due(self, now: float) -> None:
        for key in list(self._expiry.pop_due(now)):
            self.nzone.delete(key)
            hashed = hash_key(key)
            if self.zzone.maybe_contains(key, hashed):
                self.zzone.delete(key, hashed)
            self.stats.expirations += 1

    def _maybe_issue_marker(self, now: float) -> None:
        if self._last_marker_time is None:
            self._last_marker_time = now
            return
        if now - self._last_marker_time < self._marker_interval:
            return
        self._issue_marker(now)

    def _issue_marker(self, now: float) -> None:
        self._last_marker_time = now
        marker_key = self.benchmark.mint(now)
        self.stats.marker_sets += 1
        # Markers go straight to the N-zone; they are not client requests
        # and never count toward service fractions.
        self._absorb_evictions(self.nzone.set(marker_key, MARKER_VALUE))

    def _maybe_adapt(self, now: float) -> None:
        if self.allocator is None:
            return
        if not self.allocator.maybe_adjust(now):
            return
        self.stats.allocation_adjustments += 1
        self._apply_targets()

    def _apply_targets(self) -> None:
        """Resize both zones toward the allocator's targets.

        Shrinking the N-zone spills its coldest items into the Z-zone (the
        paper's background mover); shrinking the Z-zone evicts.  The Z-zone
        is resized first when it must shrink so the cache never exceeds its
        total budget mid-transition.
        """
        n_target = self.allocator.nzone_target
        z_target = self.allocator.zzone_target
        if z_target < self.zzone.capacity:
            self.zzone.resize(z_target)
            self._absorb_evictions(self.nzone.resize(n_target))
        else:
            self._absorb_evictions(self.nzone.resize(n_target))
            self.zzone.resize(z_target)

    def check_invariants(self) -> None:
        self.nzone.check_invariants()
        self.zzone.check_invariants()
