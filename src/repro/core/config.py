"""Configuration for a :class:`~repro.core.zexpander.ZExpander` instance."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.common.errors import ConfigurationError
from repro.compression.base import Compressor
from repro.faults.plan import FaultPlan
from repro.nzone.base import NZone
from repro.zzone.zzone import DEFAULT_BLOCK_CAPACITY


@dataclass
class ZExpanderConfig:
    """All tunables, defaulted to the paper's choices.

    * ``target_service_fraction`` — the fraction of (expensive) requests
      that should be handled by the N-zone; 90 % by default (§3.3.1).
    * ``adjustment_step`` — each adaptation moves the N-zone target by 3 %
      of the total cache space (§3.3.1).
    * ``window_seconds`` — adaptation check period, one minute (§3.3.1).
    * ``block_capacity`` — Z-zone container capacity, 2 KB (§3.2).
    * ``benchmark_weights`` — weighted average over the three most recent
      marker samples (§3.3.2), most recent first.
    """

    total_capacity: int
    nzone_fraction: float = 0.3
    nzone_factory: Optional[Callable[[int], NZone]] = None
    compressor: Optional[Compressor] = None
    block_capacity: int = DEFAULT_BLOCK_CAPACITY
    adaptive: bool = True
    target_service_fraction: float = 0.90
    service_fraction_slack: float = 0.02
    adjustment_step: float = 0.03
    window_seconds: float = 60.0
    marker_interval_seconds: float = 10.0
    benchmark_weights: Tuple[float, float, float] = (0.5, 0.3, 0.2)
    min_zone_fraction: float = 0.05
    seed: int = 0
    #: Ablation knobs: "reuse-time" is the paper's §3.3.2 rule; "always"
    #: promotes every Z-zone hit; "never" leaves items in place.
    promotion_policy: str = "reuse-time"
    use_content_filter: bool = True
    use_access_filter: bool = True
    #: Verify each Z-zone block's payload CRC before decompression.
    #: Turning it off recovers the unchecked PR-1 fast path.
    verify_checksums: bool = True
    #: Optional seeded fault plan; setting one wraps the codec in a
    #: fault injector and arms the corruption hooks (chaos testing).
    fault_plan: Optional[FaultPlan] = None
    #: Z-zone fast path: per-block write-combining append region size.
    #: 0 (the default, and the experiment configuration) disables staging
    #: — every put reconstructs its block, as the paper describes.
    append_region_bytes: int = 0
    #: Z-zone fast path: decompressed-container LRU capacity in blocks.
    #: 0 (the default) disables the cache.  Its memory is host-side
    #: scratch, metered by a gauge but not charged to the cache budget.
    decompressed_cache_blocks: int = 0

    def validate(self) -> None:
        if self.total_capacity <= 0:
            raise ConfigurationError("total_capacity must be positive")
        if not 0.0 < self.nzone_fraction < 1.0:
            raise ConfigurationError("nzone_fraction must be in (0, 1)")
        if not 0.0 < self.target_service_fraction < 1.0:
            raise ConfigurationError("target_service_fraction must be in (0, 1)")
        if not 0.0 < self.adjustment_step < 0.5:
            raise ConfigurationError("adjustment_step must be in (0, 0.5)")
        if self.window_seconds <= 0:
            raise ConfigurationError("window_seconds must be positive")
        if self.marker_interval_seconds <= 0:
            raise ConfigurationError("marker_interval_seconds must be positive")
        if len(self.benchmark_weights) != 3 or any(
            w < 0 for w in self.benchmark_weights
        ):
            raise ConfigurationError("benchmark_weights must be 3 non-negatives")
        if sum(self.benchmark_weights) <= 0:
            raise ConfigurationError("benchmark_weights must not all be zero")
        if not 0.0 < self.min_zone_fraction < 0.5:
            raise ConfigurationError("min_zone_fraction must be in (0, 0.5)")
        if not self.min_zone_fraction <= self.nzone_fraction <= 1 - self.min_zone_fraction:
            raise ConfigurationError(
                "nzone_fraction must respect min_zone_fraction on both sides"
            )
        if self.promotion_policy not in ("reuse-time", "always", "never"):
            raise ConfigurationError(
                f"unknown promotion_policy {self.promotion_policy!r}"
            )
        if self.fault_plan is not None and not isinstance(
            self.fault_plan, FaultPlan
        ):
            raise ConfigurationError(
                f"fault_plan must be a FaultPlan, got {type(self.fault_plan).__name__}"
            )
        if self.append_region_bytes < 0:
            raise ConfigurationError("append_region_bytes must be >= 0")
        if self.append_region_bytes > self.block_capacity:
            raise ConfigurationError(
                "append_region_bytes must not exceed block_capacity "
                f"({self.append_region_bytes} > {self.block_capacity})"
            )
        if self.decompressed_cache_blocks < 0:
            raise ConfigurationError("decompressed_cache_blocks must be >= 0")
