"""Marker-request locality benchmarking (§3.3.2).

The N-zone is a black box; to learn how long an item with zero re-accesses
survives in it, zExpander periodically writes a *Marker* — a SET with a
unique key containing characters real workloads never use — and measures
the time until the marker falls out of the zone's eviction stream.  That
eviction age is the N-zone's *locality benchmark*: a Z-zone item re-used
faster than the benchmark would out-compete the N-zone's weakest resident,
so it is promoted.

The benchmark is a weighted average of the three most recent samples.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

#: Marker keys start with a NUL byte — impossible in memcached keys.
MARKER_PREFIX = b"\x00zx-marker\x00"
#: Tiny payload: markers should displace as little real data as possible.
MARKER_VALUE = b"m"


def is_marker_key(key: bytes) -> bool:
    """True for keys minted by :class:`LocalityBenchmark`."""
    return key.startswith(MARKER_PREFIX)


class LocalityBenchmark:
    """Mints marker keys and turns their eviction ages into a benchmark."""

    def __init__(self, weights: Tuple[float, float, float] = (0.5, 0.3, 0.2)) -> None:
        if len(weights) != 3:
            raise ValueError("exactly three weights are required")
        total = sum(weights)
        if total <= 0:
            raise ValueError("weights must not sum to zero")
        self._weights = tuple(w / total for w in weights)
        self._sequence = 0
        #: In-flight markers: key -> insertion time.
        self._outstanding: Dict[bytes, float] = {}
        #: Most recent eviction-age samples, newest first.
        self._samples: Deque[float] = deque(maxlen=3)

    def mint(self, now: float) -> bytes:
        """Create a fresh marker key, recording its insertion time."""
        self._sequence += 1
        key = MARKER_PREFIX + b"%016d" % self._sequence
        self._outstanding[key] = now
        return key

    def observe_eviction(self, key: bytes, now: float) -> Optional[float]:
        """Feed an evicted key; returns the new sample if it was a marker."""
        inserted = self._outstanding.pop(key, None)
        if inserted is None:
            return None
        sample = max(0.0, now - inserted)
        self._samples.appendleft(sample)
        return sample

    def observe_deletion(self, key: bytes) -> bool:
        """Forget a marker that left the zone by a path other than
        eviction (e.g. a zone teardown); returns whether it was ours."""
        return self._outstanding.pop(key, None) is not None

    @property
    def value(self) -> Optional[float]:
        """Current benchmark in seconds; None until the first sample."""
        if not self._samples:
            return None
        used = list(self._samples)
        weights = self._weights[: len(used)]
        return sum(w * s for w, s in zip(weights, used)) / sum(weights)

    @property
    def outstanding_count(self) -> int:
        return len(self._outstanding)

    @property
    def sample_count(self) -> int:
        return len(self._samples)
