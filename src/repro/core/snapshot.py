"""Cache snapshots: dump and restore a cache's contents.

Production caches get restarted; losing 60 GB of hot data to a restart
means hours of elevated backend load while the cache re-warms.  This
module serialises a cache's resident items to a compact binary file and
re-inserts them on load — an extension beyond the paper, but the natural
operational companion to a system whose whole point is holding more data.

Format (version 1): an 8-byte magic header, then per item a 4-byte
big-endian key length, 4-byte value length, key bytes, value bytes.  No
pickling — the format is independent of Python versions and safe to load
from untrusted sources (lengths are bounds-checked).

Format (version 2, magic ``ZXSNAP02``): identical except each record
carries a 4-byte big-endian client-``flags`` word between the two
lengths and the key.  Version 2 is only written when the caller passes a
flags source (the server's item-meta sidecar); flag-free snapshots stay
byte-identical to version 1, and both versions load everywhere.

Crash safety: writing to a path goes through ``<path>.tmp`` with a
flush+fsync before an atomic ``os.replace``, followed by an fsync of the
parent directory so the rename itself survives power loss (see
:func:`repro.common.fsio.atomic_write`); a crash mid-dump can leave a
stale or absent snapshot at the final path but never a truncated
one.  Loading with ``strict=False`` tolerates a truncated *tail* anyway
(e.g. a snapshot taken through a bare stream, or torn storage): the
partial trailing record is counted and skipped, and warm restart degrades
to a partial warm cache instead of refusing to start.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import BinaryIO, Iterator, Optional, Tuple, Union

from repro.common.fsio import atomic_write

MAGIC = b"ZXSNAP01"
MAGIC_V2 = b"ZXSNAP02"
_LENGTHS = struct.Struct(">II")
_LENGTHS_V2 = struct.Struct(">III")
#: Sanity bound: no key or value above 256 MiB.
_MAX_FIELD = 256 * 1024 * 1024

PathLike = Union[str, Path]


class SnapshotError(Exception):
    """Raised for malformed snapshot files."""


def _iter_cache_items(cache) -> Iterator[Tuple[bytes, bytes]]:
    """Items of a SimpleKVCache, ZExpander, sharded cache, or bare zone.

    For a two-zone cache the Z-zone is written first and the N-zone
    last: loading replays the file in order, so the hot N-zone items are
    the most recent inserts and re-form the N-zone's contents instead of
    being demoted by later traffic.  Sharded caches provide their own
    ``items()`` with the same cold-first ordering across shards.

    Z-zone append regions need no special handling here: ``ZZone.items()``
    yields each block's staged entries *after* its container entries, so
    replaying the file in order lets the staged (newest) version of a key
    overwrite any stale compressed shadow.
    """
    zzone = getattr(cache, "zzone", None)
    if zzone is not None:
        yield from zzone.items()
    nzone = getattr(cache, "nzone", None)
    if nzone is not None:
        yield from nzone.items()
    if zzone is None and nzone is None:
        yield from cache.items()


def write_snapshot(
    cache, destination: Union[PathLike, BinaryIO], meta=None
) -> int:
    """Serialise ``cache``'s items; returns the item count written.

    ``meta`` (anything with ``flags_of(key) -> int``, e.g. the server's
    :class:`~repro.server.meta.ItemMetaStore`) switches the file to the
    version-2 format so per-item client flags survive the round trip;
    without it the output is a byte-identical version-1 snapshot.

    Writing to a *path* is crash-safe: the bytes land in
    ``<destination>.tmp`` first, are flushed and fsynced, and only then
    atomically renamed over the final path, after which the parent
    directory is fsynced so the rename is durable too.  A crash at any
    point leaves either the previous snapshot or none — never a
    truncated file at the final path.  Writing to an already-open stream
    is left to the caller.
    """
    if hasattr(destination, "write"):
        return _write_stream(cache, destination, meta)
    return atomic_write(
        destination, lambda stream: _write_stream(cache, stream, meta)
    )


def _write_stream(cache, stream: BinaryIO, meta=None) -> int:
    stream.write(MAGIC if meta is None else MAGIC_V2)
    count = 0
    for key, value in _iter_cache_items(cache):
        if meta is None:
            stream.write(_LENGTHS.pack(len(key), len(value)))
        else:
            stream.write(
                _LENGTHS_V2.pack(len(key), len(value), meta.flags_of(key))
            )
        stream.write(key)
        stream.write(value)
        count += 1
    return count


class LoadResult(int):
    """Item count loaded, as an ``int``, plus recovery detail.

    Subclasses ``int`` so pre-existing callers comparing the return of
    :func:`load_snapshot` against a number keep working; new callers read
    ``loaded``, ``skipped``, and ``error`` for the recovery story.
    """

    loaded: int
    skipped: int
    error: Optional[str]

    def __new__(
        cls, loaded: int, skipped: int = 0, error: Optional[str] = None
    ) -> "LoadResult":
        self = super().__new__(cls, loaded)
        self.loaded = loaded
        self.skipped = skipped
        self.error = error
        return self

    @property
    def truncated(self) -> bool:
        return self.error is not None

    def __repr__(self) -> str:
        return (
            f"LoadResult(loaded={self.loaded}, skipped={self.skipped}, "
            f"error={self.error!r})"
        )


def read_snapshot(
    source: Union[PathLike, BinaryIO], strict: bool = True
) -> Iterator[Tuple[bytes, bytes]]:
    """Yield (key, value) pairs from a snapshot; validates the format.

    Reads both format versions (version-2 flags are dropped — use
    :func:`read_snapshot_meta` to see them).  With ``strict=False`` a
    malformed *tail* (truncated header or body, implausible lengths)
    ends the iteration instead of raising; a bad magic still raises — a
    file that never was a snapshot should not silently load as an empty
    one.
    """
    for key, value, _flags in read_snapshot_meta(source, strict):
        yield key, value


def read_snapshot_meta(
    source: Union[PathLike, BinaryIO], strict: bool = True
) -> Iterator[Tuple[bytes, bytes, int]]:
    """Yield (key, value, flags) triples; version-1 files yield flags=0."""
    sink: list = []
    if hasattr(source, "read"):
        yield from _read_stream(source, strict, sink)
        return
    with open(source, "rb") as stream:
        yield from _read_stream(stream, strict, sink)


def _read_stream(
    stream: BinaryIO, strict: bool = True, damage: Optional[list] = None
) -> Iterator[Tuple[bytes, bytes, int]]:
    """Core reader; appends one error string to ``damage`` on a bad tail."""
    magic = stream.read(len(MAGIC))
    if magic not in (MAGIC, MAGIC_V2):
        raise SnapshotError(f"bad snapshot magic: {magic!r}")
    lengths = _LENGTHS if magic == MAGIC else _LENGTHS_V2

    def fail(message: str):
        if strict:
            raise SnapshotError(message)
        if damage is not None:
            damage.append(message)

    while True:
        header = stream.read(lengths.size)
        if not header:
            return
        if len(header) != lengths.size:
            fail("truncated item header")
            return
        flags = 0
        if lengths is _LENGTHS:
            key_len, value_len = lengths.unpack(header)
        else:
            key_len, value_len, flags = lengths.unpack(header)
        if key_len > _MAX_FIELD or value_len > _MAX_FIELD:
            fail(f"implausible field lengths {key_len}/{value_len}")
            return
        key = stream.read(key_len)
        value = stream.read(value_len)
        if len(key) != key_len or len(value) != value_len:
            fail("truncated item body")
            return
        yield key, value, flags


def load_snapshot(
    cache,
    source: Union[PathLike, BinaryIO],
    strict: bool = True,
    meta=None,
) -> LoadResult:
    """Re-insert a snapshot's items into ``cache``; returns the count.

    Items are SET in file order (cold Z-zone items first, hot N-zone
    items last) so a two-zone cache re-forms roughly the same hot/cold
    split it had at dump time.

    ``meta`` (anything with ``on_set(key, flags)``) receives each item's
    client flags — the server passes its sidecar here so a version-2
    snapshot restores flags alongside values.  Loading a version-1 file
    with a ``meta`` records flags=0 for every item.

    ``strict=False`` is the warm-restart recovery mode: a truncated tail
    stops the load instead of raising, the partial record is counted in
    the result's ``skipped``, and the cache comes up partially warm.  The
    return value is an ``int`` (items loaded) carrying ``loaded`` /
    ``skipped`` / ``error`` attributes.
    """
    damage: list = []
    count = 0

    def ingest(iterator) -> None:
        nonlocal count
        for key, value, flags in iterator:
            cache.set(key, value)
            if meta is not None:
                meta.on_set(key, flags)
            count += 1

    if hasattr(source, "read"):
        ingest(_read_stream(source, strict, damage))
    else:
        with open(source, "rb") as stream:
            ingest(_read_stream(stream, strict, damage))
    error = damage[0] if damage else None
    return LoadResult(count, skipped=1 if error else 0, error=error)
