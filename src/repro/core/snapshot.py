"""Cache snapshots: dump and restore a cache's contents.

Production caches get restarted; losing 60 GB of hot data to a restart
means hours of elevated backend load while the cache re-warms.  This
module serialises a cache's resident items to a compact binary file and
re-inserts them on load — an extension beyond the paper, but the natural
operational companion to a system whose whole point is holding more data.

Format (version 1): an 8-byte magic header, then per item a 4-byte
big-endian key length, 4-byte value length, key bytes, value bytes.  No
pickling — the format is independent of Python versions and safe to load
from untrusted sources (lengths are bounds-checked).
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Iterator, Tuple, Union

MAGIC = b"ZXSNAP01"
_LENGTHS = struct.Struct(">II")
#: Sanity bound: no key or value above 256 MiB.
_MAX_FIELD = 256 * 1024 * 1024

PathLike = Union[str, Path]


class SnapshotError(Exception):
    """Raised for malformed snapshot files."""


def _iter_cache_items(cache) -> Iterator[Tuple[bytes, bytes]]:
    """Items of a SimpleKVCache, ZExpander, or bare zone.

    For a two-zone cache the Z-zone is written first and the N-zone
    last: loading replays the file in order, so the hot N-zone items are
    the most recent inserts and re-form the N-zone's contents instead of
    being demoted by later traffic.
    """
    zzone = getattr(cache, "zzone", None)
    if zzone is not None:
        yield from zzone.items()
    nzone = getattr(cache, "nzone", None)
    if nzone is not None:
        yield from nzone.items()
    if zzone is None and nzone is None:
        yield from cache.items()


def write_snapshot(cache, destination: Union[PathLike, BinaryIO]) -> int:
    """Serialise ``cache``'s items; returns the item count written."""
    if hasattr(destination, "write"):
        return _write_stream(cache, destination)
    with open(destination, "wb") as stream:
        return _write_stream(cache, stream)


def _write_stream(cache, stream: BinaryIO) -> int:
    stream.write(MAGIC)
    count = 0
    for key, value in _iter_cache_items(cache):
        stream.write(_LENGTHS.pack(len(key), len(value)))
        stream.write(key)
        stream.write(value)
        count += 1
    return count


def read_snapshot(source: Union[PathLike, BinaryIO]) -> Iterator[Tuple[bytes, bytes]]:
    """Yield (key, value) pairs from a snapshot; validates the format."""
    if hasattr(source, "read"):
        yield from _read_stream(source)
        return
    with open(source, "rb") as stream:
        yield from _read_stream(stream)


def _read_stream(stream: BinaryIO) -> Iterator[Tuple[bytes, bytes]]:
    magic = stream.read(len(MAGIC))
    if magic != MAGIC:
        raise SnapshotError(f"bad snapshot magic: {magic!r}")
    while True:
        header = stream.read(_LENGTHS.size)
        if not header:
            return
        if len(header) != _LENGTHS.size:
            raise SnapshotError("truncated item header")
        key_len, value_len = _LENGTHS.unpack(header)
        if key_len > _MAX_FIELD or value_len > _MAX_FIELD:
            raise SnapshotError(
                f"implausible field lengths {key_len}/{value_len}"
            )
        key = stream.read(key_len)
        value = stream.read(value_len)
        if len(key) != key_len or len(value) != value_len:
            raise SnapshotError("truncated item body")
        yield key, value


def load_snapshot(cache, source: Union[PathLike, BinaryIO]) -> int:
    """Re-insert a snapshot's items into ``cache``; returns the count.

    Items are SET in file order (cold Z-zone items first, hot N-zone
    items last) so a two-zone cache re-forms roughly the same hot/cold
    split it had at dump time.
    """
    count = 0
    for key, value in read_snapshot(source):
        cache.set(key, value)
        count += 1
    return count
