"""Key expiration (TTL) support.

memcached's API carries an ``exptime`` on every SET; the paper's
prototypes ignore it, but a production cache cannot.  This module adds
TTLs *above* the zones: an :class:`ExpiryIndex` maps keys to deadlines
and keeps a heap of due times, so the cache can both answer "is this key
expired?" in O(1) on the read path and proactively purge due keys during
housekeeping without scanning.

Keeping expiry out of the zones preserves the paper's design (blocks and
N-zone items stay TTL-agnostic); the trade-off — an expired item keeps
occupying cache space until read or purged — matches how memcached's own
lazy expiration behaves between LRU touches.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Tuple

#: Modelled bytes per tracked key: key hash + deadline + heap entry.
ENTRY_OVERHEAD_BYTES = 24


class ExpiryIndex:
    """Deadline bookkeeping with lazy-validated heap entries."""

    def __init__(self) -> None:
        self._deadline: Dict[bytes, float] = {}
        self._heap: List[Tuple[float, bytes]] = []

    def __len__(self) -> int:
        return len(self._deadline)

    def __bool__(self) -> bool:
        """True while any bookkeeping (deadlines or heap entries) exists.

        The cache's hot path uses this to skip expiry work entirely when
        no TTL has ever been set; the heap is included so stale entries
        keep being drained (and keep being charged) after the last live
        deadline is cleared.
        """
        return bool(self._deadline) or bool(self._heap)

    def set(self, key: bytes, deadline: Optional[float]) -> None:
        """Track ``key`` until ``deadline``; None clears any TTL."""
        if deadline is None:
            self._deadline.pop(key, None)
            return
        self._deadline[key] = deadline
        heapq.heappush(self._heap, (deadline, key))

    def clear(self, key: bytes) -> None:
        """Forget ``key`` (deleted or overwritten without a TTL)."""
        self._deadline.pop(key, None)

    def is_expired(self, key: bytes, now: float) -> bool:
        deadline = self._deadline.get(key)
        return deadline is not None and now >= deadline

    def pop_due(self, now: float, limit: int = 64) -> Iterator[bytes]:
        """Yield up to ``limit`` keys whose deadlines have passed.

        Heap entries are validated against the live map, so overwritten
        deadlines (stale entries) are skipped without cost blowups.
        """
        yielded = 0
        while self._heap and yielded < limit:
            deadline, key = self._heap[0]
            if deadline > now:
                return
            heapq.heappop(self._heap)
            if self._deadline.get(key) == deadline:
                del self._deadline[key]
                yielded += 1
                yield key

    @property
    def memory_bytes(self) -> int:
        """Modelled footprint: map entries plus outstanding heap slots."""
        return len(self._deadline) * ENTRY_OVERHEAD_BYTES + len(self._heap) * 8
