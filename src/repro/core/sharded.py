"""Sharded zExpander: N independent instances behind one interface.

Production memcached deployments spread a key space over many servers;
the paper measures one server.  :class:`ShardedZExpander` models the
fleet-level view — consistent placement by key hash, per-shard zExpander
instances, aggregated statistics — so experiments can ask fleet questions
(e.g. how per-shard adaptation behaves under skew, where the hottest
shard's miss ratio sits relative to the fleet's).

This is an extension beyond the paper (its future work discusses porting
more KV caches into zExpander; sharding is the deployment-shaped
counterpart).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.common.clock import VirtualClock
from repro.common.errors import ConfigurationError
from repro.common.hashing import hash_key
from repro.core.config import ZExpanderConfig
from repro.core.stats import ZExpanderStats
from repro.core.zexpander import ZExpander


class ShardedZExpander:
    """A fixed pool of zExpander shards addressed by key hash.

    The total budget is divided evenly; each shard runs the full policy
    stack (markers, promotion, adaptation) independently, exactly as
    independent servers would.
    """

    def __init__(
        self,
        config: ZExpanderConfig,
        num_shards: int,
        clock: Optional[VirtualClock] = None,
    ) -> None:
        if num_shards < 1:
            raise ConfigurationError(f"num_shards must be >= 1, got {num_shards}")
        per_shard = config.total_capacity // num_shards
        if per_shard <= 0:
            raise ConfigurationError("total_capacity too small for the shard count")
        self.clock = clock if clock is not None else VirtualClock()
        self.num_shards = num_shards
        self.shards: List[ZExpander] = []
        for shard_index in range(num_shards):
            shard_config = ZExpanderConfig(**{**vars(config)})
            shard_config.total_capacity = per_shard
            shard_config.seed = config.seed + shard_index
            self.shards.append(ZExpander(shard_config, clock=self.clock))

    # -- placement -------------------------------------------------------------

    def shard_for(self, key: bytes) -> ZExpander:
        """The shard responsible for ``key`` (consistent by key hash).

        Uses the *low* bits of the placement hash: the Z-zone trie
        consumes the high bits, so shard choice and block placement stay
        statistically independent.
        """
        return self.shards[hash_key(key) % self.num_shards]

    # -- KV interface ---------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        return self.shard_for(key).get(key)

    def get_many(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        """Batched lookup: one per-shard batch, results in caller order.

        Keys are grouped by owning shard (preserving each shard's
        relative caller order, which per-key accounting depends on) and
        each group rides that shard's native
        :meth:`~repro.core.zexpander.ZExpander.get_many`; single-key
        groups still count as a batch on their shard, matching what a
        fleet of independent servers would report.
        """
        by_shard: Dict[int, List[int]] = {}
        for position, key in enumerate(keys):
            shard_index = hash_key(key) % self.num_shards
            by_shard.setdefault(shard_index, []).append(position)
        results: List[Optional[bytes]] = [None] * len(keys)
        for shard_index, positions in by_shard.items():
            shard_values = self.shards[shard_index].get_many(
                [keys[position] for position in positions]
            )
            for position, value in zip(positions, shard_values):
                results[position] = value
        return results

    def set(
        self,
        key: bytes,
        value: bytes,
        ttl: Optional[float] = None,
        flags: int = 0,
    ) -> None:
        self.shard_for(key).set(key, value, ttl=ttl, flags=flags)

    def delete(self, key: bytes) -> bool:
        return self.shard_for(key).delete(key)

    def __contains__(self, key: bytes) -> bool:
        return key in self.shard_for(key)

    def routes_to_zzone(self, key: bytes) -> bool:
        """Content-Filter pre-check on the owning shard (no side effects)."""
        return self.shard_for(key).routes_to_zzone(key)

    def attach_journal(self, journal) -> None:
        """Write-through durability on every shard (one shared writer).

        The serving layer is single-threaded (asyncio), so one appender
        behind all shards needs no locking; records interleave in
        acknowledgement order, which is exactly replay order.
        """
        for shard in self.shards:
            shard.attach_journal(journal)

    def items(self):
        """All resident (key, value) pairs, coldest first.

        Z-zone items across every shard come before any N-zone items, so
        a snapshot replayed in order re-forms the fleet's hot/cold split
        the same way a single instance's does.
        """
        for shard in self.shards:
            yield from shard.zzone.items()
        for shard in self.shards:
            yield from shard.nzone.items()

    # -- aggregation -------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return sum(shard.capacity for shard in self.shards)

    @property
    def used_bytes(self) -> int:
        return sum(shard.used_bytes for shard in self.shards)

    @property
    def item_count(self) -> int:
        return sum(shard.item_count for shard in self.shards)

    def aggregate_stats(self) -> ZExpanderStats:
        """Fleet-wide counter totals."""
        total = ZExpanderStats()
        for shard in self.shards:
            for name, value in vars(shard.stats).items():
                setattr(total, name, getattr(total, name) + value)
        return total

    def aggregate_integrity(self) -> Dict[str, int]:
        """Fleet-wide Z-zone integrity counters (chaos/ops dashboards)."""
        names = (
            "checksum_failures",
            "staged_checksum_failures",
            "codec_failures",
            "codec_fallbacks",
            "quarantined_blocks",
            "quarantined_items",
            "quarantined_bytes",
            "emergency_sweeps",
        )
        totals = {name: 0 for name in names}
        for shard in self.shards:
            stats = shard.zzone.stats
            for name in names:
                totals[name] += getattr(stats, name)
        return totals

    def aggregate_fastpath(self) -> Dict[str, int]:
        """Fleet-wide Z-zone fast-path counters (staging + container cache)."""
        names = (
            "staged_puts",
            "staging_flushes",
            "container_cache_hits",
            "container_cache_misses",
            "container_decodes_saved",
        )
        totals = {name: 0 for name in names}
        for shard in self.shards:
            stats = shard.zzone.stats
            for name in names:
                totals[name] += getattr(stats, name)
        totals["container_cache_bytes"] = sum(
            shard.zzone.container_cache_bytes() for shard in self.shards
        )
        return totals

    def bind_metrics(self, registry, prefix: str = "cache") -> None:
        """Mount fleet-wide totals into a metrics registry.

        Per-field views sum lazily over the shards at snapshot time, so
        the fleet exposes the same metric names a single instance does
        (plus shard-shape gauges) and per-shard hot paths stay untouched.
        """

        def summed(group: str, field: str):
            if group == "stats":
                return lambda: sum(
                    getattr(shard.stats, field) for shard in self.shards
                )
            return lambda: sum(
                getattr(shard.zzone.stats, field) for shard in self.shards
            )

        for field in sorted(vars(self.shards[0].stats)):
            registry.view(
                f"{prefix}_{field}",
                summed("stats", field),
                f"fleet total of ZExpanderStats.{field}",
            )
        for field in sorted(vars(self.shards[0].zzone.stats)):
            registry.view(
                f"{prefix}_zzone_{field}",
                summed("zzone", field),
                f"fleet total of ZZoneStats.{field}",
            )
        registry.view(
            f"{prefix}_used_bytes", lambda: self.used_bytes, "resident bytes"
        )
        registry.view(
            f"{prefix}_capacity_bytes", lambda: self.capacity, "total budget"
        )
        registry.view(
            f"{prefix}_item_count", lambda: self.item_count, "resident items"
        )
        registry.view(
            f"{prefix}_shards", lambda: self.num_shards, "shard count"
        )
        registry.view(
            f"{prefix}_zzone_container_cache_bytes",
            lambda: sum(
                shard.zzone.container_cache_bytes() for shard in self.shards
            ),
            "fleet decompressed-container cache scratch bytes",
        )
        registry.view(
            f"{prefix}_shard_imbalance",
            self.imbalance,
            "max-over-mean item count across shards",
        )

    def shard_miss_ratios(self) -> List[float]:
        return [shard.stats.miss_ratio for shard in self.shards]

    def imbalance(self) -> float:
        """Max-over-mean item count across shards (1.0 = perfectly even)."""
        counts = [shard.item_count for shard in self.shards]
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 1.0
        return max(counts) / mean

    def check_invariants(self) -> None:
        for shard in self.shards:
            shard.check_invariants()
