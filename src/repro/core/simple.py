"""Single-zone baseline cache.

Wraps any :class:`~repro.nzone.base.NZone` behind the same GET/SET/DELETE
surface as :class:`~repro.core.zexpander.ZExpander`, so benches can swap
"memcached alone" or "H-Cache alone" for zExpander without changing the
replay loop.  Evictions simply leave the cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.stats import ZExpanderStats
from repro.nzone.base import NZone


class SimpleKVCache:
    """Baseline: one N-zone, no compression, no second chance."""

    def __init__(self, nzone: NZone) -> None:
        self.nzone = nzone
        self.stats = ZExpanderStats()
        self.journal = None

    def attach_journal(self, journal) -> None:
        """Write-through durability (same contract as ZExpander's)."""
        self.journal = journal

    def get(self, key: bytes) -> Optional[bytes]:
        self.stats.gets += 1
        value = self.nzone.get(key)
        if value is not None:
            self.stats.get_hits_nzone += 1
            self.stats.serviced_nzone += 1
        else:
            self.stats.get_misses += 1
        return value

    def get_many(self, keys: Sequence[bytes]) -> List[Optional[bytes]]:
        """Batched lookup; a plain GET loop (no compressed zone to share),
        kept so the server's batch fast path is uniform across caches."""
        self.stats.get_many_batches += 1
        self.stats.batched_keys += len(keys)
        return [self.get(key) for key in keys]

    def set(self, key: bytes, value: bytes, flags: int = 0) -> None:
        self.stats.sets += 1
        self.stats.serviced_nzone += 1
        self.nzone.set(key, value)
        if self.journal is not None:
            self.journal.append_set(key, value, flags)

    def delete(self, key: bytes) -> bool:
        self.stats.deletes += 1
        deleted = self.nzone.delete(key)
        # Journaled even on NOT_FOUND: a key evicted here may still live
        # in an older checkpoint, and replay must not resurrect it.
        if self.journal is not None:
            self.journal.append_delete(key)
        return deleted

    def __contains__(self, key: bytes) -> bool:
        return key in self.nzone

    @property
    def item_count(self) -> int:
        return self.nzone.item_count

    @property
    def used_bytes(self) -> int:
        return self.nzone.used_bytes

    @property
    def capacity(self) -> int:
        return self.nzone.capacity

    def memory_usage(self) -> Dict[str, Dict[str, int]]:
        return {"nzone": self.nzone.memory_usage()}

    def check_invariants(self) -> None:
        self.nzone.check_invariants()
