"""zExpander's core: two-zone cache management (§3).

:class:`ZExpander` composes any :class:`~repro.nzone.base.NZone` with a
:class:`~repro.zzone.zzone.ZZone` and implements the paper's glue policies:
N-first request routing, eviction spill N→Z, marker-based locality
benchmarking, re-use-time promotion Z→N, postponed removal of stale Z
versions, and adaptive space allocation between the zones.
"""

from repro.core.adaptive import AdaptiveAllocator, AllocationAction
from repro.core.config import ZExpanderConfig
from repro.core.marker import LocalityBenchmark
from repro.core.replay import ReplayStats, replay_trace
from repro.core.sharded import ShardedZExpander
from repro.core.simple import SimpleKVCache
from repro.core.snapshot import (
    LoadResult,
    SnapshotError,
    load_snapshot,
    read_snapshot,
    read_snapshot_meta,
    write_snapshot,
)
from repro.core.stats import ZExpanderStats
from repro.core.zexpander import ZExpander

__all__ = [
    "AdaptiveAllocator",
    "AllocationAction",
    "LoadResult",
    "LocalityBenchmark",
    "ReplayStats",
    "ShardedZExpander",
    "SimpleKVCache",
    "SnapshotError",
    "ZExpander",
    "ZExpanderConfig",
    "ZExpanderStats",
    "load_snapshot",
    "read_snapshot",
    "read_snapshot_meta",
    "replay_trace",
    "write_snapshot",
]
