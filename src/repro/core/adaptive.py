"""Adaptive N/Z space allocation (§3.3.1).

Every window (one minute by default) the controller looks at the fraction
of *expensive* requests serviced at the N-zone.  Below the target (90 %)
it grows the N-zone by 3 % of total cache space; above it, it shrinks by
the same step.  The action hysteresis from the paper is kept: a grow is
only triggered when the current action status is not already *expand*, a
shrink only when it is not already *shrink* — so the controller moves one
step per reversal rather than oscillating inside a window.

Requests that need no block (de)compression — filter-identified GET misses
and DELETEs of absent keys — are excluded from both counts, so the
controller regulates only the expensive work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class AllocationAction(enum.Enum):
    """Z-zone action status, as named in the paper."""

    EXPAND = "expand"  # Z-zone expanding == N-zone shrinking
    SHRINK = "shrink"  # Z-zone shrinking == N-zone growing
    STAY = "stay"


@dataclass
class WindowCounts:
    """Expensive-request tallies for the current window."""

    nzone: int = 0
    zzone: int = 0

    @property
    def total(self) -> int:
        return self.nzone + self.zzone

    def fraction_nzone(self) -> Optional[float]:
        if self.total == 0:
            return None
        return self.nzone / self.total


class AdaptiveAllocator:
    """Computes the N-zone's target size from windowed service fractions."""

    def __init__(
        self,
        total_capacity: int,
        initial_nzone_target: int,
        target_fraction: float = 0.90,
        slack: float = 0.02,
        step_fraction: float = 0.03,
        window_seconds: float = 60.0,
        min_zone_fraction: float = 0.05,
    ) -> None:
        if initial_nzone_target <= 0 or initial_nzone_target >= total_capacity:
            raise ValueError("initial N-zone target must be inside the cache")
        self.total_capacity = total_capacity
        self.target_fraction = target_fraction
        self.slack = slack
        # A sub-byte step would round to 0 on tiny caches and freeze the
        # N/Z boundary forever; one byte is the smallest honest move.
        self.step_bytes = max(1, int(total_capacity * step_fraction))
        self.window_seconds = window_seconds
        floor = int(total_capacity * min_zone_fraction)
        self._min_target = floor
        self._max_target = total_capacity - floor
        self._nzone_target = initial_nzone_target
        self._action = AllocationAction.STAY
        self._window = WindowCounts()
        self._window_start: Optional[float] = None

    # -- accounting ------------------------------------------------------------

    @property
    def nzone_target(self) -> int:
        return self._nzone_target

    @property
    def zzone_target(self) -> int:
        return self.total_capacity - self._nzone_target

    @property
    def action(self) -> AllocationAction:
        return self._action

    def record_nzone(self, count: int = 1) -> None:
        self._window.nzone += count

    def record_zzone(self, count: int = 1) -> None:
        self._window.zzone += count

    # -- the decision rule --------------------------------------------------------

    def maybe_adjust(self, now: float) -> bool:
        """Close the window if due; returns True when targets changed."""
        if self._window_start is None:
            self._window_start = now
            return False
        if now - self._window_start < self.window_seconds:
            return False
        fraction = self._window.fraction_nzone()
        self._window = WindowCounts()
        self._window_start = now
        if fraction is None:
            self._action = AllocationAction.STAY
            return False
        changed = False
        if fraction < self.target_fraction - self.slack:
            # Too much expensive traffic at the Z-zone: grow the N-zone.
            # The hysteresis guard delays an immediate reversal of a
            # Z-zone expansion by one window.
            if self._action is not AllocationAction.EXPAND:
                changed = self._move_target(+self.step_bytes)
                self._action = AllocationAction.SHRINK
            else:
                self._action = AllocationAction.STAY
        elif fraction > self.target_fraction + self.slack:
            if self._action is not AllocationAction.SHRINK:
                changed = self._move_target(-self.step_bytes)
                self._action = AllocationAction.EXPAND
            else:
                self._action = AllocationAction.STAY
        else:
            self._action = AllocationAction.STAY
        return changed

    def _move_target(self, delta: int) -> bool:
        proposed = self._nzone_target + delta
        clamped = max(self._min_target, min(self._max_target, proposed))
        if clamped == self._nzone_target:
            return False
        self._nzone_target = clamped
        return True
