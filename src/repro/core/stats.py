"""Request-level statistics for a :class:`~repro.core.zexpander.ZExpander`."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ZExpanderStats:
    """Counters over the cache's whole lifetime.

    Zone-service counters follow §3.3.1's accounting: only requests that
    involve block (de)compression count as "serviced at the Z-zone";
    filter-answered misses and absent-key DELETEs count for neither zone.
    """

    gets: int = 0
    get_hits_nzone: int = 0
    get_hits_zzone: int = 0
    get_misses: int = 0
    sets: int = 0
    deletes: int = 0
    #: Z-zone items promoted into the N-zone by the re-use-time rule.
    promotions: int = 0
    #: Re-accessed Z-zone items whose re-use time failed the benchmark.
    promotions_declined: int = 0
    #: N-zone evictions admitted into the Z-zone.
    demotions: int = 0
    #: Stale Z-zone versions scheduled for postponed removal after a SET.
    postponed_removals: int = 0
    marker_sets: int = 0
    marker_samples: int = 0
    #: Keys removed because their TTL elapsed (lazy or proactive).
    expirations: int = 0
    #: Expensive requests serviced per zone (the adaptive signal).
    serviced_nzone: int = 0
    serviced_zzone: int = 0
    allocation_adjustments: int = 0
    #: Batched reads: ``get_many`` calls served and keys they carried.
    #: Per-key accounting (gets/hits/misses above) is charged identically
    #: to the sequential path; these two only record batch API usage.
    get_many_batches: int = 0
    batched_keys: int = 0

    @property
    def miss_ratio(self) -> float:
        """Misses over GET+SET, SETs counted as hits (paper footnote 2)."""
        denominator = self.gets + self.sets
        if denominator == 0:
            return 0.0
        return self.get_misses / denominator

    @property
    def hit_ratio(self) -> float:
        return 1.0 - self.miss_ratio

    @property
    def nzone_service_fraction(self) -> float:
        """Fraction of expensive requests handled by the N-zone."""
        total = self.serviced_nzone + self.serviced_zzone
        if total == 0:
            return 1.0
        return self.serviced_nzone / total

    def snapshot(self) -> "ZExpanderStats":
        """A copy, for windowed delta computations in benches."""
        return ZExpanderStats(**vars(self))

    def delta(self, earlier: "ZExpanderStats") -> "ZExpanderStats":
        """Field-wise difference ``self - earlier``."""
        return ZExpanderStats(
            **{
                name: getattr(self, name) - getattr(earlier, name)
                for name in vars(self)
            }
        )
