"""Analytic codec that charges a calibrated ratio without byte-level work.

Large parameter sweeps (Figure 5's cache-size grid, the Figure 15 timeline)
replay millions of requests; running DEFLATE on every 2 KB block would make
the benches CPU-bound on codec work that is not the quantity under study.
``ModelCompressor`` keeps the original bytes (so GETs still return correct
data) and charges ``stored_size`` from a ratio model — by default the
container-size-dependent ratios measured for the tweet corpus (Table 2).
"""

from __future__ import annotations

import math
from typing import Callable, Optional, Sequence, Tuple

from repro.compression.base import Compressed, Compressor

#: (container_size, ratio) calibration points following Table 2's "Tweets"
#: row.  Intermediate sizes interpolate linearly; sizes beyond the last
#: point use the last ratio.
TWEETS_TABLE2_POINTS: Tuple[Tuple[int, float], ...] = (
    (1, 0.99),
    (256, 1.10),
    (512, 1.21),
    (1024, 1.30),
    (2048, 1.34),
    (4096, 1.41),
)

#: Same calibration for Table 2's "Places" row.
PLACES_TABLE2_POINTS: Tuple[Tuple[int, float], ...] = (
    (1, 1.28),
    (256, 1.28),
    (512, 1.45),
    (1024, 1.60),
    (2048, 1.70),
    (4096, 1.77),
)


def interpolated_ratio(
    points: Sequence[Tuple[int, float]],
) -> Callable[[int], float]:
    """Build a ratio(size) function interpolating calibration ``points``."""
    if not points:
        raise ValueError("at least one calibration point is required")
    ordered = sorted(points)

    def ratio(size: int) -> float:
        if size <= ordered[0][0]:
            return ordered[0][1]
        for (lo_size, lo_ratio), (hi_size, hi_ratio) in zip(ordered, ordered[1:]):
            if size <= hi_size:
                span = hi_size - lo_size
                weight = (size - lo_size) / span
                return lo_ratio + weight * (hi_ratio - lo_ratio)
        return ordered[-1][1]

    return ratio


class ModelCompressor(Compressor):
    """Charge a modelled ratio; keep payload bytes verbatim.

    ``ratio_fn`` maps the container's uncompressed size to a compression
    ratio (original / stored).  The default reproduces the tweet corpus's
    Table 2 behaviour.
    """

    def __init__(
        self, ratio_fn: Optional[Callable[[int], float]] = None, name: str = "model"
    ) -> None:
        self._ratio_fn = ratio_fn or interpolated_ratio(TWEETS_TABLE2_POINTS)
        self.name = name

    def compress(self, data: bytes) -> Compressed:
        if not data:
            return Compressed(payload=data, stored_size=0)
        ratio = self._ratio_fn(len(data))
        if ratio <= 0:
            raise ValueError(f"ratio model returned non-positive ratio {ratio}")
        stored = max(1, math.ceil(len(data) / ratio))
        return Compressed(payload=data, stored_size=stored)

    def decompress(self, compressed: Compressed) -> bytes:
        return compressed.payload
