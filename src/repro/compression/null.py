"""Identity codec for baselines and ablations."""

from __future__ import annotations

from repro.compression.base import Compressed, Compressor


class NullCompressor(Compressor):
    """Stores containers verbatim; ratio is always 1.0.

    Used by the "zExpander without compression" ablation and wherever a
    zone needs the block machinery (compaction, trie, filters) but not the
    codec cost.
    """

    name = "null"

    def compress(self, data: bytes) -> Compressed:
        return Compressed(payload=data, stored_size=len(data))

    def decompress(self, compressed: Compressed) -> bytes:
        return compressed.payload
