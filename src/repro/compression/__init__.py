"""Compression codecs and measurement utilities.

The paper uses LZ4 on 2 KB containers.  LZ4 is not available offline, so the
default real codec is :class:`ZlibCompressor` at level 1 — also an LZ-family
byte-oriented codec whose ratio grows with container size the same way.  For
large analytic sweeps where byte-level work would dominate runtime,
:class:`ModelCompressor` charges a calibrated ratio without touching bytes.
"""

from repro.compression.base import Compressed, Compressor
from repro.compression.lz4 import LZ4Compressor
from repro.compression.model import ModelCompressor
from repro.compression.null import NullCompressor
from repro.compression.ratios import (
    container_compression_ratio,
    individual_compression_ratio,
    pack_into_containers,
)
from repro.compression.zlibc import ZlibCompressor

__all__ = [
    "Compressed",
    "Compressor",
    "LZ4Compressor",
    "ModelCompressor",
    "NullCompressor",
    "ZlibCompressor",
    "container_compression_ratio",
    "individual_compression_ratio",
    "pack_into_containers",
]
