"""DEFLATE-backed codec — the offline stand-in for the paper's LZ4."""

from __future__ import annotations

import zlib

from repro.common.errors import CodecError
from repro.compression.base import Compressed, Compressor


class ZlibCompressor(Compressor):
    """Raw-DEFLATE compression via the stdlib :mod:`zlib`.

    Level 1 is the default to mirror LZ4's speed-oriented design point; the
    level is configurable for ablations.  Raw streams (negative ``wbits``)
    drop zlib's 6-byte header/checksum so small containers are not penalised
    — important because the paper's containers start at 256 B.

    If compression would *grow* the container (common for tiny or
    already-random inputs), the original bytes are stored verbatim behind a
    one-byte marker, so ``stored_size`` never exceeds ``len(data) + 1`` —
    matching how production caches guard against incompressible values.
    """

    _RAW = b"\x00"
    _DEFLATE = b"\x01"
    _WBITS = -15

    def __init__(self, level: int = 1) -> None:
        if not -1 <= level <= 9:
            raise ValueError(f"zlib level must be in [-1, 9], got {level}")
        self.level = level
        self.name = f"deflate-{level}"

    def compress(self, data: bytes) -> Compressed:
        encoder = zlib.compressobj(self.level, zlib.DEFLATED, self._WBITS)
        packed = encoder.compress(data) + encoder.flush()
        if len(packed) < len(data):
            payload = self._DEFLATE + packed
        else:
            payload = self._RAW + data
        return Compressed(payload=payload, stored_size=len(payload))

    def decompress(self, compressed: Compressed) -> bytes:
        payload = compressed.payload
        if not payload:
            raise CodecError("empty compressed payload")
        marker, body = payload[:1], payload[1:]
        if marker == self._DEFLATE:
            try:
                return zlib.decompress(body, self._WBITS)
            except zlib.error as exc:
                raise CodecError(f"corrupt DEFLATE stream: {exc}") from None
        if marker == self._RAW:
            return body
        raise CodecError(f"unknown container marker {marker!r}")
