"""Measurement helpers behind Table 2.

Table 2 compares compressing each value individually against compressing
containers of 256 B – 4 KB packed with consecutive values.  These helpers
pack a value corpus into containers and report the average ratio either way.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.compression.base import Compressor


def pack_into_containers(
    values: Iterable[bytes], container_size: int
) -> List[bytes]:
    """Greedily pack ``values`` into containers of roughly ``container_size``.

    A container is closed once appending the next value would push it past
    ``container_size``; a value larger than the container size gets its own
    container (mirroring the paper's special-casing of oversized items).
    """
    if container_size <= 0:
        raise ValueError("container_size must be positive")
    containers: List[bytes] = []
    current: List[bytes] = []
    current_size = 0
    for value in values:
        if current and current_size + len(value) > container_size:
            containers.append(b"".join(current))
            current = []
            current_size = 0
        current.append(value)
        current_size += len(value)
    if current:
        containers.append(b"".join(current))
    return containers


def individual_compression_ratio(
    values: Sequence[bytes], compressor: Compressor
) -> float:
    """Average ratio when every value is compressed on its own.

    Matches Table 2's "Individual" column: total original bytes over total
    stored bytes.
    """
    original = sum(len(v) for v in values)
    if original == 0:
        return 1.0
    stored = sum(compressor.compress(v).stored_size for v in values)
    return original / stored


def container_compression_ratio(
    values: Sequence[bytes], container_size: int, compressor: Compressor
) -> float:
    """Average ratio when values are packed into containers first."""
    containers = pack_into_containers(values, container_size)
    original = sum(len(c) for c in containers)
    if original == 0:
        return 1.0
    stored = sum(compressor.compress(c).stored_size for c in containers)
    return original / stored
