"""Compressor interface.

A codec turns a byte container into a :class:`Compressed` buffer and back.
``stored_size`` — the bytes charged to the cache's memory budget — is kept
separate from the physical payload so that modelled codecs (which keep the
original bytes but charge a calibrated ratio) share one interface with real
codecs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


@dataclass(frozen=True)
class Compressed:
    """A compressed container.

    ``payload`` is whatever the codec needs to reconstruct the original
    bytes; ``stored_size`` is the number of bytes the container occupies in
    the cache's accounting.  For real codecs the two coincide.
    """

    payload: bytes
    stored_size: int

    def __post_init__(self) -> None:
        if self.stored_size < 0:
            raise ValueError("stored_size cannot be negative")


class Compressor(abc.ABC):
    """Abstract compression codec."""

    #: Short name used in reports and bench output.
    name: str = "abstract"

    @abc.abstractmethod
    def compress(self, data: bytes) -> Compressed:
        """Compress ``data`` into a :class:`Compressed` buffer."""

    @abc.abstractmethod
    def decompress(self, compressed: Compressed) -> bytes:
        """Recover the exact original bytes from ``compressed``."""

    def ratio(self, data: bytes) -> float:
        """Compression ratio (original size / stored size) on ``data``.

        Follows the paper's Table 2 convention: ratios above 1.0 mean the
        data shrank.  Empty input has ratio 1.0 by definition.
        """
        if not data:
            return 1.0
        stored = self.compress(data).stored_size
        if stored == 0:
            return float("inf")
        return len(data) / stored
