"""Pure-Python LZ4 block-format codec.

The paper compresses Z-zone blocks with LZ4.  The `lz4` PyPI package is not
available offline, so this module implements the LZ4 *block* format from
scratch: greedy LZ77 matching over a 4-byte hash table, byte-aligned
literals, and **no entropy stage** — which is the property that matters for
reproducing Table 2 (DEFLATE's Huffman coder compresses plain ASCII even
without matches, inflating small-container ratios; LZ4 does not).

Format recap (per the LZ4 block specification):

* A block is a sequence of *sequences*.  Each sequence is a token byte —
  high nibble = literal count, low nibble = match length − 4, value 15
  meaning "extended with 255-bytes" — followed by the literals, a 2-byte
  little-endian match offset, and any extended match-length bytes.
* The final sequence carries literals only (no offset/match).
* Spec constraints honoured: the last 5 bytes are always literals, and no
  match may start within the last 12 bytes of the block.

Throughput is obviously far below the C implementation (~1 MB/s here);
callers that only need a *ratio* at scale use
:class:`~repro.compression.model.ModelCompressor` instead.
"""

from __future__ import annotations

from repro.common.errors import CodecError
from repro.compression.base import Compressed, Compressor

_MIN_MATCH = 4
#: Spec: matches must not start within the last 12 bytes of the input.
_MF_LIMIT = 12
#: Spec: the last 5 bytes of the input are always encoded as literals.
_LAST_LITERALS = 5
_MAX_OFFSET = 0xFFFF


def _write_length(out: bytearray, length: int) -> None:
    """Emit LZ4's 255-run extension bytes for a nibble overflow."""
    length -= 15
    while length >= 255:
        out.append(255)
        length -= 255
    out.append(length)


def lz4_block_compress(data: bytes) -> bytes:
    """Compress ``data`` into an LZ4 block (without frame headers)."""
    n = len(data)
    out = bytearray()
    if n == 0:
        return bytes(out)

    table = {}
    anchor = 0
    pos = 0
    match_limit = n - _MF_LIMIT

    while pos < match_limit:
        quad = data[pos : pos + _MIN_MATCH]
        candidate = table.get(quad)
        table[quad] = pos
        if candidate is None or pos - candidate > _MAX_OFFSET:
            pos += 1
            continue
        if data[candidate : candidate + _MIN_MATCH] != quad:
            pos += 1
            continue

        # Extend the match forward; it may run at most to the last-5-bytes
        # literal region.
        match_end = pos + _MIN_MATCH
        ref = candidate + _MIN_MATCH
        limit = n - _LAST_LITERALS
        while match_end < limit and data[match_end] == data[ref]:
            match_end += 1
            ref += 1
        match_length = match_end - pos

        literal_length = pos - anchor
        token_lit = min(literal_length, 15)
        token_match = min(match_length - _MIN_MATCH, 15)
        out.append((token_lit << 4) | token_match)
        if literal_length >= 15:
            _write_length(out, literal_length)
        out += data[anchor:pos]
        out += (pos - candidate).to_bytes(2, "little")
        if match_length - _MIN_MATCH >= 15:
            _write_length(out, match_length - _MIN_MATCH)

        pos = match_end
        anchor = pos

    # Trailing literals-only sequence.
    literal_length = n - anchor
    token_lit = min(literal_length, 15)
    out.append(token_lit << 4)
    if literal_length >= 15:
        _write_length(out, literal_length)
    out += data[anchor:]
    return bytes(out)


def lz4_block_decompress(block: bytes) -> bytes:
    """Decompress an LZ4 block produced by :func:`lz4_block_compress`."""
    out = bytearray()
    pos = 0
    n = len(block)
    while pos < n:
        token = block[pos]
        pos += 1
        literal_length = token >> 4
        if literal_length == 15:
            while True:
                byte = block[pos]
                pos += 1
                literal_length += byte
                if byte != 255:
                    break
        out += block[pos : pos + literal_length]
        pos += literal_length
        if pos >= n:
            break  # final literals-only sequence
        offset = int.from_bytes(block[pos : pos + 2], "little")
        pos += 2
        if offset == 0:
            raise CodecError("corrupt LZ4 block: zero match offset")
        match_length = (token & 0x0F) + _MIN_MATCH
        if (token & 0x0F) == 15:
            while True:
                byte = block[pos]
                pos += 1
                match_length += byte
                if byte != 255:
                    break
        start = len(out) - offset
        if start < 0:
            raise CodecError("corrupt LZ4 block: offset beyond output")
        # Overlapping copies are the norm (offset < match_length encodes
        # run-length repetition), so copy byte ranges chunk by chunk.
        while match_length > 0:
            chunk = out[start : start + min(match_length, offset)]
            out += chunk
            match_length -= len(chunk)
            start += len(chunk)
    return bytes(out)


class LZ4Compressor(Compressor):
    """The paper's codec, reimplemented from the block-format spec.

    Like :class:`~repro.compression.zlibc.ZlibCompressor`, an incompressible
    container is stored verbatim behind a one-byte marker so ``stored_size``
    never exceeds ``len(data) + 1``.
    """

    _RAW = b"\x00"
    _LZ4 = b"\x01"

    name = "lz4"

    def compress(self, data: bytes) -> Compressed:
        packed = lz4_block_compress(data)
        if len(packed) < len(data):
            payload = self._LZ4 + packed
        else:
            payload = self._RAW + data
        return Compressed(payload=payload, stored_size=len(payload))

    def decompress(self, compressed: Compressed) -> bytes:
        payload = compressed.payload
        if not payload:
            raise CodecError("empty compressed payload")
        marker, body = payload[:1], payload[1:]
        if marker == self._LZ4:
            try:
                return lz4_block_decompress(body)
            except IndexError:
                # A truncated sequence runs off the end of the block.
                raise CodecError("corrupt LZ4 block: truncated sequence") from None
        if marker == self._RAW:
            return body
        raise CodecError(f"unknown container marker {marker!r}")
