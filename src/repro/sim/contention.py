"""Multi-thread scaling via the Universal Scalability Law.

Gunther's USL generalises Amdahl's law with a crosstalk term:

    X(n) = X(1) * n / (1 + sigma*(n-1) + kappa*n*(n-1))

``sigma`` captures serialisation (lock hold times), ``kappa`` coherence
traffic (cache-line ping-pong, the paper's "lock contention intensifies").
Two effects from §4.4 are modelled explicitly:

* **SET intensity** — SETs exclusive-lock the index, so both parameters
  grow with the workload's SET fraction ("with more SETs, both systems'
  throughput reduces ... SETs intensify H-Cache's lock contention").
* **Lock share** — only requests touching the N-zone's shared structures
  contend.  H-zExpander diverts ~10 % of requests to Z-zone work between
  lock acquisitions, so its effective contention is lower at equal thread
  counts — the mechanism behind its catch-up at 24 threads and its better
  tail latency (Figures 10–11).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ContentionModel:
    """USL parameters calibrated to Figure 10's H-Cache curves."""

    sigma: float = 0.006
    kappa: float = 0.0011
    #: Additional serialisation/coherence per unit of SET fraction.
    set_sigma: float = 0.055
    set_kappa: float = 0.0042

    def effective_params(self, set_fraction: float):
        """(sigma, kappa) after workload scaling."""
        if not 0.0 <= set_fraction <= 1.0:
            raise ValueError(f"set_fraction must be in [0, 1], got {set_fraction}")
        sigma = self.sigma + self.set_sigma * set_fraction
        kappa = self.kappa + self.set_kappa * set_fraction
        return sigma, kappa

    def speedup(self, threads: int, lock_share: float, set_fraction: float) -> float:
        """X(n)/X(1) under the effective parameters.

        ``lock_share`` enters twice, modelling §4.4's observation that
        threads diverted to Z-zone work relieve the N-zone: the effective
        concurrency at the shared structures is ``lock_share * n`` (fewer
        threads there at once), and only that share of requests waits at
        all.
        """
        if threads < 1:
            raise ValueError(f"threads must be >= 1, got {threads}")
        if not 0.0 <= lock_share <= 1.0:
            raise ValueError(f"lock_share must be in [0, 1], got {lock_share}")
        return threads / (
            1.0 + self.wait_inflation(threads, lock_share, set_fraction)
        )

    def throughput(
        self,
        threads: int,
        single_thread_rps: float,
        lock_share: float,
        set_fraction: float,
    ) -> float:
        """Requests/second at ``threads`` threads."""
        if single_thread_rps <= 0:
            raise ValueError("single_thread_rps must be positive")
        return single_thread_rps * self.speedup(threads, lock_share, set_fraction)

    def wait_inflation(
        self, threads: int, lock_share: float, set_fraction: float
    ) -> float:
        """Mean queueing/lock delay as a multiple of service time.

        This is the USL denominator's excess over 1 — the average fraction
        of a request's life spent waiting rather than being served — used
        by the latency sampler and the speedup curve.
        """
        sigma, kappa = self.effective_params(set_fraction)
        m = max(1.0, lock_share * threads)  # concurrency at the N-zone
        return lock_share * (sigma * (m - 1) + kappa * m * (m - 1))


#: memcached's scaling is network-dispatch-bound: §4.3 reports <100 K RPS
#: at one thread rising to <700 K at 24 (a ~7.4x speedup), which the USL
#: hits with a ~0.1 serialisation coefficient.
MEMCACHED_CONTENTION = ContentionModel(
    sigma=0.105,
    kappa=0.0004,
    set_sigma=0.02,
    set_kappa=0.0002,
)
