"""Per-operation cost tables.

Costs are in seconds per request on one core of the paper's testbed class
(Xeon E5-2680v3).  They are calibrated against the absolute anchors the
paper states in §4.3:

* memcached: "less than 100 K RPS with one thread" → a ~10 µs network/
  syscall path dominating every request;
* zExpander serving *all* requests at its Z-zone, no networking: "around
  1.3 M RPS with one thread" on the 95 %/5 % YCSB mix → GET-with-
  decompression ≈ 0.7 µs, SET-with-recompression ≈ 3.5 µs;
* H-Cache: Figure 10's all-GET curve implies ≈ 2.3 M RPS per thread
  before contention → cuckoo GET ≈ 0.42 µs.

The relative magnitudes follow the operations' real byte work: an LZ4-
class codec decompresses ~3 GB/s (2 KB block ≈ 0.7 µs) and compresses
~700 MB/s (≈ 3 µs), a Bloom-filter probe plus trie walk is tens of
nanoseconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class OpKind(enum.Enum):
    """Every priced request outcome."""

    NZONE_GET_HIT = "nzone_get_hit"
    NZONE_SET = "nzone_set"
    ZZONE_GET_HIT = "zzone_get_hit"
    #: GET/DELETE answered "absent" by the Content Filter (no decompress).
    FILTERED_MISS = "filtered_miss"
    #: Filter false positive: decompressed, then missed.
    FALSE_POSITIVE_MISS = "false_positive_miss"
    #: N-zone eviction admitted into the Z-zone (block rebuild).
    DEMOTION = "demotion"
    #: Z-zone item moved into the N-zone (block rebuild + N set).
    PROMOTION = "promotion"
    ZZONE_DELETE = "zzone_delete"
    NZONE_DELETE = "nzone_delete"


@dataclass(frozen=True)
class CostModel:
    """Seconds per operation, plus a per-request network charge."""

    nzone_get_hit: float
    nzone_set: float
    zzone_get_hit: float
    filtered_miss: float
    false_positive_miss: float
    demotion: float
    promotion: float
    zzone_delete: float
    nzone_delete: float
    #: Added to *every* request (network stack, syscalls); 0 when the
    #: client runs in-process as in the H-prototypes.
    network_per_request: float = 0.0

    def cost(self, kind: OpKind) -> float:
        return getattr(self, kind.value)

    def with_network(self, network_per_request: float) -> "CostModel":
        return replace(self, network_per_request=network_per_request)


#: H-prototype costs (no networking), §4.1's second prototype.  The
#: Z-zone write path (demotion) prices a 2 KB LZ4 recompression at
#: ~1.3 GB/s plus the rebuild bookkeeping; with these values the all-Z
#: 95/5 mix prices to 0.755 µs = 1.32 M RPS, matching §4.3's "around
#: 1.3 M RPS with one thread ... if networking is excluded".
HIGH_PERFORMANCE_COSTS = CostModel(
    nzone_get_hit=0.42e-6,
    nzone_set=0.60e-6,
    zzone_get_hit=0.70e-6,
    # A filtered miss still walks the N-zone index, the trie, and the
    # Content Filter, so it costs *more* than an N-zone hit (the paper:
    # "request hits ... are much more efficient than misses").
    filtered_miss=0.55e-6,
    false_positive_miss=1.15e-6,
    demotion=1.8e-6,
    promotion=2.4e-6,
    zzone_delete=1.8e-6,
    nzone_delete=0.45e-6,
)

#: memcached-based prototype: identical Z-zone costs, a heavier chained-
#: hash/LRU engine, plus the ~10.3 µs networking/dispatch path §4.3 blames
#: for memcached's sub-100 K single-thread RPS.
MEMCACHED_COSTS = CostModel(
    nzone_get_hit=0.70e-6,
    nzone_set=0.95e-6,
    zzone_get_hit=0.70e-6,
    filtered_miss=0.85e-6,
    false_positive_miss=1.45e-6,
    demotion=1.8e-6,
    promotion=2.4e-6,
    zzone_delete=1.8e-6,
    nzone_delete=0.70e-6,
    network_per_request=10.3e-6,
)
