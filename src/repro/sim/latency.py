"""Request-processing-time distributions (Figure 11).

Latency per request = the priced service time of its operation kind plus a
lock/queueing delay.  The delay is exponential with mean equal to the
contention model's wait inflation times the mean service time, and it only
applies to requests that acquire contended locks (probability =
``lock_share``).  This reproduces Figure 11's crossover: the system with
cheaper service times (H-Cache) wins at low percentiles, while the system
with the smaller lock share (H-zExpander) wins the tail.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.common.rng import derive_seed
from repro.sim.contention import ContentionModel
from repro.sim.costmodel import CostModel, OpKind
from repro.sim.perfsim import OpMix


def percentile(sorted_samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100] of sorted data."""
    if not sorted_samples:
        raise ValueError("no samples")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    rank = (q / 100.0) * (len(sorted_samples) - 1)
    low = int(rank)
    high = min(low + 1, len(sorted_samples) - 1)
    weight = rank - low
    return sorted_samples[low] * (1 - weight) + sorted_samples[high] * weight


def percentile_curve(
    samples: Sequence[float], points: Sequence[float] = (50, 90, 95, 99, 99.9)
) -> List[Tuple[float, float]]:
    """(percentile, value) pairs for CDF reporting."""
    ordered = sorted(samples)
    return [(q, percentile(ordered, q)) for q in points]


class LatencyModel:
    """Samples per-request processing times for a mix at a thread count."""

    def __init__(
        self,
        costs: CostModel,
        contention: ContentionModel = None,
        seed: int = 0,
        burst_factor: float = 2.5,
    ) -> None:
        self.costs = costs
        self.contention = contention if contention is not None else ContentionModel()
        self._rng = np.random.default_rng(derive_seed(seed, "latency"))
        #: Arrival burstiness: mean wait exceeds the USL's *time-average*
        #: inflation because waits cluster at contended instants.
        self.burst_factor = burst_factor

    def sample(self, mix: OpMix, threads: int, count: int = 100_000) -> np.ndarray:
        """Return ``count`` simulated request latencies in seconds."""
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        kinds = [kind for kind in OpKind if mix.rate(kind) > 0]
        if not kinds:
            raise ValueError("mix has no operations")
        weights = np.array([mix.rate(kind) for kind in kinds], dtype=np.float64)
        weights /= weights.sum()
        service = np.array(
            [self.costs.cost(kind) + self.costs.network_per_request for kind in kinds]
        )
        chosen = self._rng.choice(len(kinds), size=count, p=weights)
        latencies = service[chosen].copy()
        inflation = self.contention.wait_inflation(
            threads, mix.lock_share, mix.set_fraction
        )
        if inflation > 0 and mix.lock_share > 0:
            # Lock waits are a property of the *contended structure*, not
            # of the waiting request: the wait scale is the N-zone lock
            # hold time (the cost of the shared-structure operations),
            # inflated by the USL's excess.  Requests that do Z-zone work
            # between acquisitions (H-zExpander) contend less often AND
            # see a lower inflation — Figure 11's tail crossover.
            hold_kinds = (OpKind.NZONE_GET_HIT, OpKind.NZONE_SET, OpKind.NZONE_DELETE)
            hold_rate = sum(mix.rate(kind) for kind in hold_kinds)
            if hold_rate > 0:
                hold_time = (
                    sum(mix.rate(kind) * self.costs.cost(kind) for kind in hold_kinds)
                    / hold_rate
                )
            else:
                hold_time = float(np.dot(weights, service))
            contended = self._rng.random(count) < mix.lock_share
            waits = self._rng.exponential(
                (inflation / max(mix.lock_share, 1e-9))
                * hold_time
                * self.burst_factor,
                size=count,
            )
            latencies = latencies + np.where(contended, waits, 0.0)
        return latencies

    def cdf_points(
        self,
        mix: OpMix,
        threads: int,
        count: int = 100_000,
        points: Sequence[float] = (50, 90, 95, 99, 99.9),
    ) -> List[Tuple[float, float]]:
        """(percentile, seconds) pairs for Figure 11-style reporting."""
        samples = np.sort(self.sample(mix, threads, count))
        return [(q, float(np.percentile(samples, q))) for q in points]
