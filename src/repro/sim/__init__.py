"""Performance modelling.

The paper's throughput and latency numbers come from C prototypes on a
dual Xeon E5-2680v3; a Python interpreter is two orders of magnitude
slower, so timing Python would say nothing about the paper's claims.
Instead, the data plane runs for real (real blocks, real compression,
real filters) and *speed* is computed analytically:

1. a replay measures the workload's **operation mix** — what fraction of
   requests hit the N-zone, decompress a Z-block, are answered by a
   Content Filter, trigger a demotion, and so on;
2. a calibrated **cost model** prices each operation kind (§ cost table in
   :mod:`repro.sim.costmodel`);
3. a **contention model** (Universal Scalability Law, applied to the
   share of requests that touch the N-zone's shared structures) turns
   single-thread service time into throughput-vs-threads curves and
   latency distributions.

DESIGN.md §2 documents this substitution; EXPERIMENTS.md reports the
resulting shapes against the paper's.
"""

from repro.sim.contention import ContentionModel
from repro.sim.costmodel import (
    HIGH_PERFORMANCE_COSTS,
    MEMCACHED_COSTS,
    CostModel,
    OpKind,
)
from repro.sim.latency import LatencyModel, percentile, percentile_curve
from repro.sim.perfsim import OpMix, PerformanceModel, mix_from_stats

__all__ = [
    "ContentionModel",
    "CostModel",
    "HIGH_PERFORMANCE_COSTS",
    "LatencyModel",
    "MEMCACHED_COSTS",
    "OpKind",
    "OpMix",
    "PerformanceModel",
    "mix_from_stats",
    "percentile",
    "percentile_curve",
]
