"""Operation mixes and the combined performance model.

``OpMix`` describes, per client request, how often each priced operation
happens — measured from a real replay's statistics rather than assumed.
``PerformanceModel`` prices a mix, applies the contention model, and
reports throughput and simulated miss rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.stats import ZExpanderStats
from repro.sim.contention import ContentionModel
from repro.sim.costmodel import CostModel, OpKind


@dataclass(frozen=True)
class OpMix:
    """Per-request rates of each operation kind.

    Rates are events per client request (GET/SET/DELETE), so demotions —
    which happen on eviction, not per request — can exceed intuition but
    are honestly amortised.
    """

    rates: Dict[OpKind, float] = field(default_factory=dict)
    #: Fraction of requests that acquire the N-zone's shared locks.
    lock_share: float = 1.0
    #: SET fraction of the client workload (drives contention growth).
    set_fraction: float = 0.0
    #: GET-miss ratio of the replay (for miss-rate figures).
    miss_ratio: float = 0.0

    def rate(self, kind: OpKind) -> float:
        return self.rates.get(kind, 0.0)

    def with_lock_share(self, lock_share: float) -> "OpMix":
        """Copy with a different lock share.

        The memcached prototypes bottleneck on the shared network/dispatch
        path, which every request crosses regardless of zone — benches
        modelling them pin the lock share to 1.
        """
        return OpMix(
            rates=dict(self.rates),
            lock_share=lock_share,
            set_fraction=self.set_fraction,
            miss_ratio=self.miss_ratio,
        )


def mix_from_stats(stats: ZExpanderStats) -> OpMix:
    """Derive the measured operation mix from a replay's statistics."""
    requests = stats.gets + stats.sets + stats.deletes
    if requests == 0:
        raise ValueError("no requests recorded; replay before deriving a mix")
    filtered_misses = max(0, stats.get_misses)  # split below
    # Z-zone GET misses divide into filter-answered and false-positive
    # paths; ZExpanderStats doesn't carry FP counts (the zone does), so
    # callers with a live cache should prefer mix_from_cache.
    rates = {
        OpKind.NZONE_GET_HIT: stats.get_hits_nzone / requests,
        OpKind.ZZONE_GET_HIT: stats.get_hits_zzone / requests,
        OpKind.FILTERED_MISS: filtered_misses / requests,
        OpKind.NZONE_SET: stats.sets / requests,
        OpKind.DEMOTION: stats.demotions / requests,
        OpKind.PROMOTION: stats.promotions / requests,
        OpKind.NZONE_DELETE: stats.deletes / requests,
    }
    # Misses probe the N-zone index read-only before falling through to
    # the Z-zone, so they carry half weight in the lock share.
    lock_share = (
        stats.get_hits_nzone
        + stats.sets
        + stats.promotions
        + stats.deletes
        + 0.5 * stats.get_misses
    ) / requests
    set_fraction = stats.sets / requests
    return OpMix(
        rates=rates,
        lock_share=min(1.0, lock_share),
        set_fraction=set_fraction,
        miss_ratio=stats.miss_ratio,
    )


def mix_from_cache(cache, stats: Optional[ZExpanderStats] = None) -> OpMix:
    """Like :func:`mix_from_stats` but uses the live cache's Z-zone
    counters to split misses into filtered vs false-positive paths."""
    stats = stats if stats is not None else cache.stats
    base = mix_from_stats(stats)
    zzone = getattr(cache, "zzone", None)
    if zzone is None:
        return base
    requests = stats.gets + stats.sets + stats.deletes
    fp = zzone.stats.false_positives
    filtered = max(0, stats.get_misses - fp)
    rates = dict(base.rates)
    rates[OpKind.FILTERED_MISS] = filtered / requests
    rates[OpKind.FALSE_POSITIVE_MISS] = fp / requests
    return OpMix(
        rates=rates,
        lock_share=base.lock_share,
        set_fraction=base.set_fraction,
        miss_ratio=base.miss_ratio,
    )


class PerformanceModel:
    """Prices an :class:`OpMix` into throughput and miss-rate numbers."""

    def __init__(
        self,
        costs: CostModel,
        contention: Optional[ContentionModel] = None,
    ) -> None:
        self.costs = costs
        self.contention = contention if contention is not None else ContentionModel()

    def service_time(self, mix: OpMix) -> float:
        """Mean single-thread seconds per client request."""
        time = self.costs.network_per_request
        for kind in OpKind:
            time += mix.rate(kind) * self.costs.cost(kind)
        if time <= 0:
            raise ValueError("operation mix prices to non-positive time")
        return time

    def single_thread_rps(self, mix: OpMix) -> float:
        return 1.0 / self.service_time(mix)

    def throughput(self, mix: OpMix, threads: int) -> float:
        """Requests/second at ``threads`` threads."""
        return self.contention.throughput(
            threads,
            self.single_thread_rps(mix),
            mix.lock_share,
            mix.set_fraction,
        )

    def miss_rate(self, mix: OpMix, threads: int) -> float:
        """Misses per second (Figure 12's metric): throughput x miss ratio."""
        return self.throughput(mix, threads) * mix.miss_ratio
