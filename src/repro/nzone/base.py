"""The N-zone interface.

Mutating operations return the items they evicted instead of invoking a
callback: zExpander's core loop routes those spills into the Z-zone, and
explicit return values keep the data flow visible and testable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class EvictedItem:
    """An item pushed out of the N-zone."""

    key: bytes
    value: bytes

    @property
    def size(self) -> int:
        return len(self.key) + len(self.value)


class NZone(abc.ABC):
    """Byte-bounded uncompressed KV cache."""

    @property
    @abc.abstractmethod
    def capacity(self) -> int:
        """Current byte budget."""

    @property
    @abc.abstractmethod
    def used_bytes(self) -> int:
        """Bytes charged, including metadata and fragmentation."""

    @property
    @abc.abstractmethod
    def item_count(self) -> int:
        """Resident item count."""

    @abc.abstractmethod
    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value for ``key`` (refreshing recency) or None."""

    @abc.abstractmethod
    def set(self, key: bytes, value: bytes) -> List[EvictedItem]:
        """Insert or replace; returns the items evicted to make room."""

    @abc.abstractmethod
    def delete(self, key: bytes) -> bool:
        """Remove ``key``; returns whether it was resident."""

    @abc.abstractmethod
    def __contains__(self, key: bytes) -> bool:
        """Residency check without touching recency state."""

    @abc.abstractmethod
    def resize(self, capacity: int) -> List[EvictedItem]:
        """Change the byte budget; shrinking evicts and returns spills."""

    @abc.abstractmethod
    def memory_usage(self) -> Dict[str, int]:
        """Byte breakdown: at least ``items``, ``metadata``, ``other``."""

    @abc.abstractmethod
    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate resident (key, value) pairs, without recency effects.

        Order is implementation-defined; used by snapshots and debugging.
        """

    def check_invariants(self) -> None:
        """Hook for subclasses to assert internal consistency in tests."""
