"""N-zone implementations: the uncompressed, high-performance partition.

The paper's N-zone is "almost a plug-in of any existing KV cache system".
Three managers are provided:

* :class:`MemcachedZone` — a behavioural model of memcached 1.4.24: slab
  classes, per-class LRU queues, chained hash table, and byte-accurate
  metadata/fragmentation accounting (drives Figures 5–9).
* :class:`HPCacheZone` — a MemC3-style cache: 4-way optimistic cuckoo
  hashing with CLOCK replacement (drives Figures 10–16; the paper's
  "H-Cache").
* :class:`PlainZone` — a minimal dict+LRU zone used as a reference
  implementation in tests.
"""

from repro.nzone.base import EvictedItem, NZone
from repro.nzone.cuckoo import CuckooTable
from repro.nzone.hpcache import HPCacheZone
from repro.nzone.memcached import MemcachedZone, SlabAllocator
from repro.nzone.plain import PlainZone

__all__ = [
    "CuckooTable",
    "EvictedItem",
    "HPCacheZone",
    "MemcachedZone",
    "NZone",
    "PlainZone",
    "SlabAllocator",
]
