"""A behavioural model of memcached 1.4.24 (the paper's M-zExpander N-zone).

What Figures 5–9 need from memcached is (a) its LRU behaviour *per slab
class* and (b) its memory layout — where the bytes of a 60 GB cache
actually go (Figure 7: only ~56 % holds KV payload, ~32 % is per-item
metadata, the rest is slab fragmentation).  This model reproduces both:

* **Slab allocation** — memory is carved into pages (1 MB, memcached's
  default) assigned on demand to *slab classes* of geometrically growing
  chunk sizes (factor 1.25 from a 96 B minimum).  An item occupies one
  chunk of the smallest class that fits; the rounding gap is internal
  fragmentation.  Pages are never reassigned between classes (1.4.x
  default), which is exactly the calcification effect LAMA [24] studies.
* **Per-item metadata** — a 48-byte item header (the three pointers the
  paper counts: hash-chain next, LRU prev/next — plus refcount, flags,
  CAS) and an 8-byte suffix, plus the hash-table bucket array (grown at
  1.5× load like memcached's).
* **Per-class LRU queues** — eviction takes the LRU item *of the class
  the incoming item needs*, memcached's actual policy.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.common.units import MB
from repro.nzone.base import EvictedItem, NZone

ITEM_HEADER_BYTES = 48
ITEM_SUFFIX_BYTES = 8
HASH_BUCKET_BYTES = 8
DEFAULT_PAGE_BYTES = 1 * MB
DEFAULT_MIN_CHUNK = 96
DEFAULT_GROWTH_FACTOR = 1.25


def build_chunk_sizes(
    min_chunk: int = DEFAULT_MIN_CHUNK,
    growth_factor: float = DEFAULT_GROWTH_FACTOR,
    max_chunk: int = DEFAULT_PAGE_BYTES,
) -> List[int]:
    """The geometric chunk-size ladder of memcached's slab classes."""
    if min_chunk < 48:
        raise ValueError(f"min_chunk must be >= 48, got {min_chunk}")
    if growth_factor <= 1.0:
        raise ValueError(f"growth_factor must exceed 1, got {growth_factor}")
    sizes: List[int] = []
    size = min_chunk
    while size < max_chunk:
        # memcached aligns chunks to 8 bytes.
        aligned = (size + 7) & ~7
        if not sizes or aligned > sizes[-1]:
            sizes.append(aligned)
        size = int(size * growth_factor)
    sizes.append(max_chunk)
    return sizes


class SlabAllocator:
    """Page/chunk bookkeeping for one cache instance.

    Pages are assigned to classes on demand and never returned (matching
    1.4.x without slab reassignment); a page yields
    ``page_bytes // chunk_size`` chunks, the remainder being page-tail
    waste.
    """

    def __init__(
        self,
        memory_limit: int,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        chunk_sizes: Optional[List[int]] = None,
    ) -> None:
        if memory_limit < page_bytes:
            raise ValueError(
                f"memory limit {memory_limit} below one page ({page_bytes})"
            )
        self.memory_limit = memory_limit
        self.page_bytes = page_bytes
        self.chunk_sizes = chunk_sizes or build_chunk_sizes(max_chunk=page_bytes)
        self._pages_per_class = [0] * len(self.chunk_sizes)
        self._free_chunks = [0] * len(self.chunk_sizes)
        self._used_chunks = [0] * len(self.chunk_sizes)
        self._total_pages = 0

    def class_for(self, needed: int) -> Optional[int]:
        """Smallest class whose chunk fits ``needed`` bytes, or None."""
        for class_id, chunk in enumerate(self.chunk_sizes):
            if chunk >= needed:
                return class_id
        return None

    def allocate(self, class_id: int) -> bool:
        """Take one chunk of ``class_id``; may assign a fresh page.

        Returns False when no chunk is free and the memory limit blocks a
        new page — the caller must evict from this class's LRU.
        """
        if self._free_chunks[class_id] == 0:
            next_total = (self._total_pages + 1) * self.page_bytes
            if next_total > self.memory_limit:
                return False
            self._pages_per_class[class_id] += 1
            self._total_pages += 1
            self._free_chunks[class_id] += (
                self.page_bytes // self.chunk_sizes[class_id]
            )
        self._free_chunks[class_id] -= 1
        self._used_chunks[class_id] += 1
        return True

    def free(self, class_id: int) -> None:
        """Return one chunk of ``class_id`` to its free list."""
        if self._used_chunks[class_id] == 0:
            raise ValueError(f"class {class_id} has no used chunks")
        self._used_chunks[class_id] -= 1
        self._free_chunks[class_id] += 1

    def release_empty_pages(self, class_id: int) -> int:
        """Give back fully-free pages (used only by resize, an extension:
        stock memcached cannot shrink).  Assumes free chunks can be
        compacted into whole pages — optimistic, documented in
        :meth:`MemcachedZone.resize`."""
        chunks_per_page = self.page_bytes // self.chunk_sizes[class_id]
        released = 0
        while (
            self._free_chunks[class_id] >= chunks_per_page
            and self._pages_per_class[class_id] > 0
        ):
            self._free_chunks[class_id] -= chunks_per_page
            self._pages_per_class[class_id] -= 1
            self._total_pages -= 1
            released += 1
        return released

    # -- accounting -----------------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        return self._total_pages * self.page_bytes

    def free_chunk_bytes(self) -> int:
        return sum(
            free * chunk
            for free, chunk in zip(self._free_chunks, self.chunk_sizes)
        )

    def page_tail_bytes(self) -> int:
        return sum(
            pages * (self.page_bytes % chunk)
            for pages, chunk in zip(self._pages_per_class, self.chunk_sizes)
        )

    def used_chunk_bytes(self) -> int:
        return sum(
            used * chunk
            for used, chunk in zip(self._used_chunks, self.chunk_sizes)
        )


class MemcachedZone(NZone):
    """memcached-1.4.24-like N-zone."""

    def __init__(
        self,
        capacity: int,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        min_chunk: int = DEFAULT_MIN_CHUNK,
        growth_factor: float = DEFAULT_GROWTH_FACTOR,
    ) -> None:
        self._slabs = SlabAllocator(
            capacity,
            page_bytes=page_bytes,
            chunk_sizes=build_chunk_sizes(min_chunk, growth_factor, page_bytes),
        )
        self._capacity = capacity
        # Per-class LRU queues: class_id -> OrderedDict[key, value].
        self._lru: Dict[int, "OrderedDict[bytes, bytes]"] = {}
        # Global index: key -> (class_id, class queue).  Caching the queue
        # reference alongside the class id saves the second hash lookup
        # (index -> class -> queue) on every GET, the dominant operation.
        self._index: Dict[bytes, tuple] = {}
        self._payload_bytes = 0
        self._hash_buckets = 1024
        self._grow_at = self._hash_buckets * 3 // 2

    # -- helpers ----------------------------------------------------------------

    @staticmethod
    def item_footprint(key: bytes, value: bytes) -> int:
        """Bytes an item needs inside its chunk (header + suffix + data)."""
        return ITEM_HEADER_BYTES + ITEM_SUFFIX_BYTES + len(key) + 1 + len(value)

    def _maybe_grow_hashtable(self) -> None:
        while len(self._index) > self._grow_at:
            self._hash_buckets *= 2
            self._grow_at = self._hash_buckets * 3 // 2

    def _class_queue(self, class_id: int) -> "OrderedDict[bytes, bytes]":
        queue = self._lru.get(class_id)
        if queue is None:
            queue = OrderedDict()
            self._lru[class_id] = queue
        return queue

    # -- NZone interface -----------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        """Bytes unavailable for new data: all assigned pages + hash table."""
        return self._slabs.allocated_bytes + self._hash_buckets * HASH_BUCKET_BYTES

    @property
    def item_count(self) -> int:
        return len(self._index)

    def get(self, key: bytes) -> Optional[bytes]:
        entry = self._index.get(key)
        if entry is None:
            return None
        queue = entry[1]
        queue.move_to_end(key)
        return queue[key]

    def set(self, key: bytes, value: bytes) -> List[EvictedItem]:
        footprint = self.item_footprint(key, value)
        class_id = self._slabs.class_for(footprint)
        if class_id is None:
            # Larger than the biggest chunk: memcached refuses the store.
            return [EvictedItem(key=key, value=value)]
        evicted: List[EvictedItem] = []
        old_entry = self._index.get(key)
        if old_entry is not None:
            self._remove(key, old_entry)
        while not self._slabs.allocate(class_id):
            victim = self._evict_one(class_id)
            if victim is None:
                # No page available and nothing to evict in this class.
                return evicted + [EvictedItem(key=key, value=value)]
            evicted.append(victim)
        queue = self._class_queue(class_id)
        queue[key] = value
        self._index[key] = (class_id, queue)
        self._payload_bytes += len(key) + len(value)
        if len(self._index) > self._grow_at:
            self._maybe_grow_hashtable()
        return evicted

    def _evict_one(self, class_id: int) -> Optional[EvictedItem]:
        queue = self._lru.get(class_id)
        if not queue:
            return None
        victim_key, victim_value = queue.popitem(last=False)
        del self._index[victim_key]
        self._payload_bytes -= len(victim_key) + len(victim_value)
        self._slabs.free(class_id)
        return EvictedItem(key=victim_key, value=victim_value)

    def _remove(self, key: bytes, entry: tuple) -> bytes:
        class_id, queue = entry
        value = queue.pop(key)
        del self._index[key]
        self._payload_bytes -= len(key) + len(value)
        self._slabs.free(class_id)
        return value

    def delete(self, key: bytes) -> bool:
        entry = self._index.get(key)
        if entry is None:
            return False
        self._remove(key, entry)
        return True

    def __contains__(self, key: bytes) -> bool:
        return key in self._index

    def resize(self, capacity: int) -> List[EvictedItem]:
        """Shrink/grow the memory limit (an extension; see module docs).

        Stock memcached cannot resize online — the paper's M-zExpander
        prototype therefore uses *static* zone sizes, and so do the
        M-zExpander benches.  This method exists for the H-zExpander-style
        adaptive experiments when they run against the memcached model: it
        evicts LRU items class-by-class and optimistically releases pages.
        """
        if capacity < self._slabs.page_bytes:
            raise ValueError("capacity below one slab page")
        self._capacity = capacity
        self._slabs.memory_limit = capacity
        evicted: List[EvictedItem] = []
        while self._slabs.allocated_bytes > capacity:
            class_id = self._largest_class()
            if class_id is None:
                break
            victim = self._evict_one(class_id)
            if victim is not None:
                evicted.append(victim)
            released = self._slabs.release_empty_pages(class_id)
            if victim is None and released == 0:
                break
        return evicted

    def _largest_class(self) -> Optional[int]:
        best = None
        best_pages = 0
        for class_id, pages in enumerate(self._slabs._pages_per_class):
            if pages > best_pages:
                best, best_pages = class_id, pages
        return best

    def memory_usage(self) -> Dict[str, int]:
        """Figure 7's breakdown.

        ``items`` is raw KV payload; ``metadata`` is item headers +
        suffixes + the hash-table array; ``other`` is slab fragmentation
        (chunk rounding, free chunks, page tails).
        """
        metadata = (
            len(self._index) * (ITEM_HEADER_BYTES + ITEM_SUFFIX_BYTES + 1)
            + self._hash_buckets * HASH_BUCKET_BYTES
        )
        items = self._payload_bytes
        other = self.used_bytes - items - metadata
        return {"items": items, "metadata": metadata, "other": other}

    def items(self):
        for queue in self._lru.values():
            yield from list(queue.items())

    def check_invariants(self) -> None:
        total_items = sum(len(queue) for queue in self._lru.values())
        if total_items != len(self._index):
            raise AssertionError("LRU queues and index disagree")
        payload = sum(
            len(k) + len(v) for queue in self._lru.values() for k, v in queue.items()
        )
        if payload != self._payload_bytes:
            raise AssertionError(
                f"payload accounting off: {payload} != {self._payload_bytes}"
            )
        if self._slabs.allocated_bytes > self._capacity:
            raise AssertionError("slab pages exceed the memory limit")
