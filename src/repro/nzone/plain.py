"""Reference N-zone: dict + LRU, charged at payload size only.

Useful in tests (simplest possible correct zone) and as the "ideal"
baseline with zero metadata overhead in memory-efficiency comparisons.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.nzone.base import EvictedItem, NZone


class PlainZone(NZone):
    """Byte-bounded LRU over an ordered dict; no overhead modelling."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._items: "OrderedDict[bytes, bytes]" = OrderedDict()
        self._used = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def item_count(self) -> int:
        return len(self._items)

    def get(self, key: bytes) -> Optional[bytes]:
        value = self._items.get(key)
        if value is None:
            return None
        self._items.move_to_end(key)
        return value

    def set(self, key: bytes, value: bytes) -> List[EvictedItem]:
        size = len(key) + len(value)
        if size > self._capacity:
            # Too big to ever fit; report it straight through as a spill.
            return [EvictedItem(key=key, value=value)]
        old = self._items.pop(key, None)
        if old is not None:
            self._used -= len(key) + len(old)
        self._items[key] = value
        self._used += size
        return self._evict_to_fit()

    def _evict_to_fit(self) -> List[EvictedItem]:
        evicted: List[EvictedItem] = []
        while self._used > self._capacity and self._items:
            victim_key, victim_value = self._items.popitem(last=False)
            self._used -= len(victim_key) + len(victim_value)
            evicted.append(EvictedItem(key=victim_key, value=victim_value))
        return evicted

    def delete(self, key: bytes) -> bool:
        value = self._items.pop(key, None)
        if value is None:
            return False
        self._used -= len(key) + len(value)
        return True

    def __contains__(self, key: bytes) -> bool:
        return key in self._items

    def resize(self, capacity: int) -> List[EvictedItem]:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        return self._evict_to_fit()

    def memory_usage(self) -> Dict[str, int]:
        return {"items": self._used, "metadata": 0, "other": 0}

    def items(self):
        return iter(list(self._items.items()))

    def check_invariants(self) -> None:
        total = sum(len(k) + len(v) for k, v in self._items.items())
        if total != self._used:
            raise AssertionError(f"used={self._used}, actual={total}")
        if self._used > self._capacity:
            raise AssertionError("over capacity")
