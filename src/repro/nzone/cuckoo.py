"""4-way optimistic cuckoo hash table (MemC3-style, used by H-Cache).

MemC3 [22] replaces memcached's chained hash table with a set-associative
cuckoo table: every key has two candidate buckets of four slots each, and
inserts displace victims along a random walk.  The paper's H-Cache adopts
this design; we implement the table for real — displacement walk, partial
key tags, grow-and-rehash on failure — because its occupancy and probe
behaviour feed the performance model.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Tuple

from repro.common.hashing import fnv1a_64, hash_key
from repro.common.rng import make_rng

SLOTS_PER_BUCKET = 4
#: Modelled bytes per slot: a 1-byte tag plus a pointer, padded.
SLOT_BYTES = 8

#: The alternate-bucket step depends only on the 1-byte tag, so all 256
#: FNV values are precomputed instead of hashing on every lookup.
_TAG_STEP = tuple(fnv1a_64(bytes([tag])) for tag in range(256))

# Entry layout inside a slot: (key, tag, payload).
_Slot = Tuple[bytes, int, Any]


class CuckooTable:
    """Byte-modelled, behaviourally real cuckoo hash table."""

    def __init__(
        self,
        initial_buckets: int = 1024,
        max_kicks: int = 500,
        seed: int = 0,
    ) -> None:
        if initial_buckets < 2 or initial_buckets & (initial_buckets - 1):
            raise ValueError("initial_buckets must be a power of two >= 2")
        self._buckets: List[List[_Slot]] = [[] for _ in range(initial_buckets)]
        self._mask = initial_buckets - 1
        self._max_kicks = max_kicks
        self._rng = make_rng(seed, "cuckoo")
        self._count = 0
        #: Telemetry: total displacement steps across all inserts.
        self.total_kicks = 0
        self.rehashes = 0

    # -- hashing ---------------------------------------------------------------

    @staticmethod
    def _tag(hashed: int) -> int:
        tag = (hashed >> 56) & 0xFF
        return tag or 1  # tag 0 is reserved, as in cuckoo-filter practice

    def _bucket1(self, hashed: int) -> int:
        return hashed & self._mask

    def _alt_bucket(self, bucket: int, tag: int) -> int:
        # Partial-key cuckoo hashing: the alternate is computable from the
        # bucket and the tag alone, in either direction.
        return (bucket ^ (_TAG_STEP[tag] & self._mask)) & self._mask

    def _candidates(self, key: bytes) -> Tuple[int, int, int]:
        hashed = hash_key(key)
        tag = (hashed >> 56) & 0xFF or 1
        mask = self._mask
        b1 = hashed & mask
        return b1, (b1 ^ (_TAG_STEP[tag] & mask)) & mask, tag

    # -- operations ---------------------------------------------------------------

    def get(self, key: bytes) -> Optional[Any]:
        b1, b2, tag = self._candidates(key)
        for bucket_index in (b1, b2):
            for slot_key, slot_tag, payload in self._buckets[bucket_index]:
                if slot_tag == tag and slot_key == key:
                    return payload
        return None

    def __contains__(self, key: bytes) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self._count

    def insert(self, key: bytes, payload: Any) -> None:
        """Insert or replace; grows the table if the walk fails."""
        b1, b2, tag = self._candidates(key)
        for bucket_index in (b1, b2):
            bucket = self._buckets[bucket_index]
            for position, (slot_key, slot_tag, _payload) in enumerate(bucket):
                if slot_tag == tag and slot_key == key:
                    bucket[position] = (key, tag, payload)
                    return
        if self._try_place(key, tag, payload, b1, b2):
            self._count += 1
            return
        # Displacement walk failed: grow and retry (rehash doubles space).
        self._grow()
        self.insert(key, payload)

    def _try_place(
        self, key: bytes, tag: int, payload: Any, b1: int, b2: int
    ) -> bool:
        for bucket_index in (b1, b2):
            bucket = self._buckets[bucket_index]
            if len(bucket) < SLOTS_PER_BUCKET:
                bucket.append((key, tag, payload))
                return True
        # Random-walk displacement.
        current = (key, tag, payload)
        bucket_index = self._rng.choice((b1, b2))
        for _ in range(self._max_kicks):
            bucket = self._buckets[bucket_index]
            victim_position = self._rng.randrange(SLOTS_PER_BUCKET)
            victim = bucket[victim_position]
            bucket[victim_position] = current
            self.total_kicks += 1
            current = victim
            bucket_index = self._alt_bucket(bucket_index, current[1])
            bucket = self._buckets[bucket_index]
            if len(bucket) < SLOTS_PER_BUCKET:
                bucket.append(current)
                return True
        # Undo is unnecessary: the displaced chain is still fully stored;
        # only ``current`` is homeless, so re-insert it after growing.
        self._homeless = current
        return False

    def _grow(self) -> None:
        old_entries: List[_Slot] = [
            slot for bucket in self._buckets for slot in bucket
        ]
        homeless = getattr(self, "_homeless", None)
        if homeless is not None:
            old_entries.append(homeless)
            self._homeless = None
        new_size = (self._mask + 1) * 2
        self._buckets = [[] for _ in range(new_size)]
        self._mask = new_size - 1
        self._count = 0
        self.rehashes += 1
        for key, _tag, payload in old_entries:
            self.insert(key, payload)

    def delete(self, key: bytes) -> bool:
        b1, b2, tag = self._candidates(key)
        for bucket_index in (b1, b2):
            bucket = self._buckets[bucket_index]
            for position, (slot_key, slot_tag, _payload) in enumerate(bucket):
                if slot_tag == tag and slot_key == key:
                    bucket.pop(position)
                    self._count -= 1
                    return True
        return False

    def items(self) -> Iterator[Tuple[bytes, Any]]:
        for bucket in self._buckets:
            for slot_key, _tag, payload in bucket:
                yield slot_key, payload

    # -- accounting ------------------------------------------------------------------

    @property
    def bucket_count(self) -> int:
        return self._mask + 1

    @property
    def memory_bytes(self) -> int:
        """Modelled footprint: the full slot array, occupied or not."""
        return self.bucket_count * SLOTS_PER_BUCKET * SLOT_BYTES

    @property
    def load_factor(self) -> float:
        return self._count / (self.bucket_count * SLOTS_PER_BUCKET)
