"""H-Cache: the high-performance N-zone (cuckoo hashing + CLOCK, §4.1).

The paper's second prototype removes networking and manages its N-zone
with MemC3's design: an optimistic cuckoo hash table for the index and
CLOCK replacement instead of LRU (one reference bit per item, no list
pointers to maintain).  This zone is the "H-Cache" baseline of Figures
10–16 when run standalone, and H-zExpander's N-zone when paired with a
Z-zone.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.nzone.base import EvictedItem, NZone
from repro.nzone.cuckoo import CuckooTable

#: Modelled per-item bookkeeping outside the hash table: length fields,
#: flags, the CLOCK reference bit, allocation header.
ITEM_OVERHEAD_BYTES = 24

# Ring-entry field indices.
_KEY, _VALUE, _REFBIT, _ALIVE = range(4)


class HPCacheZone(NZone):
    """Byte-bounded CLOCK cache indexed by a real cuckoo table."""

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        # Size the table for the capacity (MemC3 provisions its table for
        # the expected item count): ~256 bytes of cache per bucket keeps
        # the slot array at a few percent of the budget.
        buckets = 4
        while buckets * 256 < capacity and buckets < (1 << 24):
            buckets *= 2
        self._table = CuckooTable(initial_buckets=buckets, seed=seed)
        #: CLOCK ring: entries are mutable lists; dead entries linger until
        #: compaction so the hand's position stays meaningful.
        self._ring: List[list] = []
        self._hand = 0
        self._dead = 0
        self._payload_bytes = 0
        self._count = 0

    # -- internals -----------------------------------------------------------

    def _item_bytes(self, key: bytes, value: bytes) -> int:
        return len(key) + len(value) + ITEM_OVERHEAD_BYTES

    @property
    def _items_used(self) -> int:
        return self._payload_bytes + self._count * ITEM_OVERHEAD_BYTES

    def _compact_ring(self) -> None:
        if self._dead * 2 <= len(self._ring):
            return
        hand_entry = None
        if self._ring and self._hand < len(self._ring):
            hand_entry = self._ring[self._hand]
        self._ring = [entry for entry in self._ring if entry[_ALIVE]]
        self._dead = 0
        self._hand = 0
        if hand_entry is not None and hand_entry[_ALIVE]:
            try:
                self._hand = self._ring.index(hand_entry)
            except ValueError:  # pragma: no cover - defensive
                self._hand = 0

    def _evict_one(self) -> Optional[EvictedItem]:
        """Advance the CLOCK hand to a victim and evict it."""
        if self._count == 0:
            return None
        while True:
            if self._hand >= len(self._ring):
                self._hand = 0
            entry = self._ring[self._hand]
            if not entry[_ALIVE]:
                self._hand += 1
                continue
            if entry[_REFBIT]:
                entry[_REFBIT] = False
                self._hand += 1
                continue
            entry[_ALIVE] = False
            self._dead += 1
            self._hand += 1
            self._table.delete(entry[_KEY])
            self._payload_bytes -= len(entry[_KEY]) + len(entry[_VALUE])
            self._count -= 1
            victim = EvictedItem(key=entry[_KEY], value=entry[_VALUE])
            self._compact_ring()
            return victim

    def _evict_to_fit(self) -> List[EvictedItem]:
        evicted: List[EvictedItem] = []
        while self.used_bytes > self._capacity:
            victim = self._evict_one()
            if victim is None:
                break
            evicted.append(victim)
        return evicted

    # -- NZone interface ---------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def used_bytes(self) -> int:
        return self._items_used + self._table.memory_bytes

    @property
    def item_count(self) -> int:
        return self._count

    def get(self, key: bytes) -> Optional[bytes]:
        entry = self._table.get(key)
        if entry is None or not entry[_ALIVE]:
            return None
        entry[_REFBIT] = True
        return entry[_VALUE]

    def set(self, key: bytes, value: bytes) -> List[EvictedItem]:
        if self._item_bytes(key, value) > self._capacity:
            return [EvictedItem(key=key, value=value)]
        entry = self._table.get(key)
        if entry is not None and entry[_ALIVE]:
            self._payload_bytes += len(value) - len(entry[_VALUE])
            entry[_VALUE] = value
            entry[_REFBIT] = True
            return self._evict_to_fit()
        new_entry = [key, value, False, True]
        self._ring.append(new_entry)
        self._table.insert(key, new_entry)
        self._payload_bytes += len(key) + len(value)
        self._count += 1
        return self._evict_to_fit()

    def delete(self, key: bytes) -> bool:
        entry = self._table.get(key)
        if entry is None or not entry[_ALIVE]:
            return False
        entry[_ALIVE] = False
        self._dead += 1
        self._table.delete(key)
        self._payload_bytes -= len(key) + len(entry[_VALUE])
        self._count -= 1
        self._compact_ring()
        return True

    def __contains__(self, key: bytes) -> bool:
        entry = self._table.get(key)
        return entry is not None and entry[_ALIVE]

    def resize(self, capacity: int) -> List[EvictedItem]:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        return self._evict_to_fit()

    def memory_usage(self) -> Dict[str, int]:
        return {
            "items": self._payload_bytes,
            "metadata": self._count * ITEM_OVERHEAD_BYTES + self._table.memory_bytes,
            "other": 0,
        }

    def items(self):
        for entry in list(self._ring):
            if entry[_ALIVE]:
                yield entry[_KEY], entry[_VALUE]

    def check_invariants(self) -> None:
        alive = [entry for entry in self._ring if entry[_ALIVE]]
        if len(alive) != self._count:
            raise AssertionError(f"count {self._count} != alive {len(alive)}")
        if len(self._table) != self._count:
            raise AssertionError("cuckoo table and ring disagree")
        payload = sum(len(e[_KEY]) + len(e[_VALUE]) for e in alive)
        if payload != self._payload_bytes:
            raise AssertionError("payload bytes out of sync")
        for key, entry in self._table.items():
            if not entry[_ALIVE] or entry[_KEY] != key:
                raise AssertionError("table points at dead or wrong entry")
