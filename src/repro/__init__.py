"""zExpander reproduction — a two-zone key-value cache.

Reimplementation of *zExpander: a Key-Value Cache with both High
Performance and Fewer Misses* (Wu et al., EuroSys 2016), including every
substrate the paper's evaluation depends on: a memcached behavioural
model, a MemC3-style cuckoo+CLOCK cache, replacement-policy simulators
(LRU/LIRS/ARC/LRU-X), an LZ4 block codec, workload synthesisers for the
Facebook/YCSB traces, and a calibrated performance model.

Quickstart::

    from repro import ZExpander, ZExpanderConfig

    cache = ZExpander(ZExpanderConfig(total_capacity=64 * 1024 * 1024))
    cache.set(b"user:42", b"value bytes")
    assert cache.get(b"user:42") == b"value bytes"

See DESIGN.md for the architecture and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.common.clock import VirtualClock
from repro.common.errors import (
    CacheError,
    CapacityError,
    CheckpointError,
    CodecError,
    ConfigurationError,
    ConnectionDrainingError,
    CorruptionDetectedError,
    DurabilityError,
    FaultPlanError,
    IntegrityError,
    ItemTooLargeError,
    JournalError,
    ProtocolError,
    ReadOnlyReplicaError,
    ReplicaLaggingError,
    ReplicationError,
    RequestTimeoutError,
    ServerOverloadedError,
    ServingError,
)
from repro.common.records import KVItem, Operation, Request
from repro.common.units import GB, KB, MB, format_bytes, parse_size
from repro.core import (
    LoadResult,
    ShardedZExpander,
    SimpleKVCache,
    SnapshotError,
    ZExpander,
    ZExpanderConfig,
    ZExpanderStats,
    load_snapshot,
    replay_trace,
    write_snapshot,
)
from repro.compression import (
    LZ4Compressor,
    ModelCompressor,
    NullCompressor,
    ZlibCompressor,
)
from repro.durability import (
    DurabilityConfig,
    DurabilityManager,
    DurabilityStats,
    JournalConfig,
    JournalWriter,
    RecoveryResult,
    replay_journal,
    scrub_directory,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    log_buckets,
    merge_snapshots,
)
from repro.nzone import HPCacheZone, MemcachedZone, PlainZone
from repro.zzone import ZZone

__version__ = "1.0.0"

__all__ = [
    "GB",
    "KB",
    "MB",
    "CacheError",
    "CapacityError",
    "CheckpointError",
    "CodecError",
    "ConfigurationError",
    "ConnectionDrainingError",
    "CorruptionDetectedError",
    "Counter",
    "DurabilityConfig",
    "DurabilityError",
    "DurabilityManager",
    "DurabilityStats",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "Gauge",
    "HPCacheZone",
    "Histogram",
    "IntegrityError",
    "ItemTooLargeError",
    "JournalConfig",
    "JournalError",
    "JournalWriter",
    "KVItem",
    "LZ4Compressor",
    "LoadResult",
    "MemcachedZone",
    "MetricsRegistry",
    "ModelCompressor",
    "NullCompressor",
    "Operation",
    "PlainZone",
    "ProtocolError",
    "RecoveryResult",
    "Request",
    "ReadOnlyReplicaError",
    "ReplicaLaggingError",
    "ReplicationError",
    "RequestTimeoutError",
    "ServerOverloadedError",
    "ServingError",
    "ShardedZExpander",
    "SimpleKVCache",
    "SnapshotError",
    "VirtualClock",
    "ZExpander",
    "ZExpanderConfig",
    "ZExpanderStats",
    "ZZone",
    "ZlibCompressor",
    "format_bytes",
    "load_snapshot",
    "log_buckets",
    "merge_snapshots",
    "parse_size",
    "replay_journal",
    "replay_trace",
    "scrub_directory",
    "write_snapshot",
    "__version__",
]
