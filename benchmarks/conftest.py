"""Shared plumbing for the reproduction benches.

Every bench runs its experiment exactly once (``benchmark.pedantic`` with
one round — these are minutes-long replays, not microbenchmarks), writes
the paper-style table to ``benchmarks/results/<name>.txt``, and asserts
the qualitative shape the paper reports.  EXPERIMENTS.md indexes the
committed outputs.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def run_once(benchmark, results_dir):
    """Run an experiment once under pytest-benchmark and save its table."""

    def runner(name, fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        (results_dir / f"{name}.txt").write_text(result.table() + "\n")
        return result

    return runner
