"""Figure 2 — miss-ratio curves under LRU / LIRS / ARC."""

from repro.experiments import fig02_miss_curves
from repro.experiments.common import WORKLOAD_NAMES


def test_fig02_miss_curves(run_once):
    result = run_once("fig02_miss_curves", fig02_miss_curves.run)
    for workload in WORKLOAD_NAMES:
        for algorithm in ("LRU", "LIRS", "ARC"):
            series = dict(result.series(workload, algorithm))
            # Monotone decrease with capacity across the sweep.
            assert series[3.0] < series[1.0]
        # Advanced algorithms beat LRU at base size, moderately.
        lru = dict(result.series(workload, "LRU"))
        arc = dict(result.series(workload, "ARC"))
        lirs = dict(result.series(workload, "LIRS"))
        assert min(arc[1.0], lirs[1.0]) <= lru[1.0]
