"""Figure 10 — H-Cache vs H-zExpander throughput vs threads."""

from repro.experiments import fig10_hp_tput
from repro.experiments.hzx_runs import mix_label


def test_fig10_hp_tput(run_once):
    result = run_once("fig10_hp_tput", fig10_hp_tput.run)
    for get_fraction, set_fraction in ((1.0, 0.0), (0.95, 0.05), (0.5, 0.5)):
        label = mix_label(get_fraction, set_fraction)
        hcache = dict(result.series(label, "H-Cache"))
        hzx = dict(result.series(label, "H-zExpander"))
        # H-zExpander runs below H-Cache at low thread counts...
        assert hzx[1] < hcache[1]
        # ...but closes the gap as threads grow (lock-contention relief).
        assert hzx[24] / hcache[24] > hzx[1] / hcache[1]
    # Peak throughput anchor: all-GET tops out in the tens of millions.
    all_get = dict(result.series(mix_label(1.0, 0.0), "H-Cache"))
    assert 20e6 < all_get[24] < 45e6
    # More SETs, less throughput — for both systems.
    heavy = dict(result.series(mix_label(0.5, 0.5), "H-Cache"))
    assert heavy[24] < all_get[24]
