"""Figure 6 — uncompressed bytes of cached KV items."""

from repro.experiments import fig06_cached_bytes
from repro.experiments.common import WORKLOAD_NAMES


def test_fig06_cached_bytes(run_once):
    result = run_once("fig06_cached_bytes", fig06_cached_bytes.run)
    for workload in WORKLOAD_NAMES:
        # M-zExpander holds more KV-item bytes in the same memory.
        assert all(increase > 0 for increase in result.increases(workload))
    # USR (2-byte values) shows the largest gains: memcached's per-item
    # overhead dwarfs its payloads.
    usr_best = max(result.increases("USR"))
    others = max(
        max(result.increases(w)) for w in ("APP", "YCSB")
    )
    assert usr_best > others
