"""Figure 16 — miss ratio and throughput across the adaptation run."""

from repro.experiments import fig16_adaptation_perf


def test_fig16_adaptation_perf(run_once):
    result = run_once("fig16_adaptation_perf", fig16_adaptation_perf.run)
    miss_uniform, tput_uniform = result.phase_average("uniform")
    miss_zipf, tput_zipf = result.phase_average("zipfian")
    # The paper's Figure 16: after the switch the miss ratio collapses
    # (37 % -> 5.2 %) while throughput changes only moderately.
    assert miss_zipf < miss_uniform * 0.6
    assert tput_zipf > tput_uniform * 0.7
    # Throughput stays in the paper's tens-of-millions regime.
    assert 5e6 < tput_zipf < 45e6
