#!/usr/bin/env python
"""Serving-layer wall-clock benchmark -> ``BENCH_server.json``.

Times the asyncio memcached front-end over loopback: single-connection
request round-trip latency (GET and SET), pooled-client concurrent
throughput, and multi-GET batching.  Run it like the other wall-clock
harness::

    PYTHONPATH=src python benchmarks/bench_server.py --scale smoke
    PYTHONPATH=src python benchmarks/bench_server.py              # bench scale

Results land in ``BENCH_server.json`` at the repo root (override with
``--out``), one :class:`repro.analysis.benchjson.BenchRecord` per bench.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.benchjson import (
    BenchRecord,
    append_records,
    git_revision,
    percentile,
)
from repro.core.config import ZExpanderConfig
from repro.core.sharded import ShardedZExpander
from repro.metrics import Histogram, log_buckets, merge_snapshots
from repro.server.client import MemcacheClient
from repro.server.loadgen import expected_value, key_name
from repro.server.server import CacheServer, ServerConfig

SCALES = {
    "smoke": {"ops": 2_000, "keys": 400},
    "bench": {"ops": 10_000, "keys": 1_000},
}


async def _started_server(
    seed: int = 42,
    journal_dir: str | None = None,
    batch_reads: bool = True,
):
    cache = ShardedZExpander(
        ZExpanderConfig(total_capacity=8 * 1024 * 1024, seed=seed),
        num_shards=2,
    )
    config = ServerConfig(port=0, batch_reads=batch_reads)
    if journal_dir is not None:
        config = ServerConfig(
            port=0, journal_dir=journal_dir, fsync="interval",
            batch_reads=batch_reads,
        )
    server = CacheServer(cache, config)
    await server.start()
    task = asyncio.create_task(server.run())
    return server, task


async def _populate(client: MemcacheClient, keys: int, seed: int) -> None:
    for key_id in range(keys):
        await client.set(key_name(0, key_id), expected_value(seed, 0, key_id, 1))


#: One revision probe per run: every record of a run carries the same
#: rev (the one the whole run was measured at), and re-probing git per
#: record could even disagree with itself mid-run.
_GIT_REV: str = "unknown"


def _record(name, config, samples_us, wall_s, ops):
    return BenchRecord(
        bench=name,
        config=config,
        ops_per_sec=ops / wall_s if wall_s > 0 else None,
        p50_us=percentile(samples_us, 50) if samples_us else None,
        p99_us=percentile(samples_us, 99) if samples_us else None,
        wall_s=round(wall_s, 4),
        git_rev=_GIT_REV,
    )


async def bench_get_rtt(ops: int, keys: int, seed: int) -> BenchRecord:
    """Sequential single-key GET round-trips on one connection."""
    server, task = await _started_server(seed)
    client = MemcacheClient(port=server.port, pool_size=1)
    await _populate(client, keys, seed)
    samples = []
    started = time.perf_counter()
    for i in range(ops):
        t0 = time.perf_counter()
        await client.get(key_name(0, i % keys))
        samples.append((time.perf_counter() - t0) * 1e6)
    wall = time.perf_counter() - started
    await client.close()
    server.begin_drain()
    await task
    return _record(
        "server_get_rtt", {"ops": ops, "keys": keys, "seed": seed}, samples,
        wall, ops,
    )


async def bench_set_rtt(ops: int, keys: int, seed: int) -> BenchRecord:
    """Sequential SET round-trips on one connection."""
    server, task = await _started_server(seed)
    client = MemcacheClient(port=server.port, pool_size=1)
    samples = []
    started = time.perf_counter()
    for i in range(ops):
        key_id = i % keys
        value = expected_value(seed, 0, key_id, 1)
        t0 = time.perf_counter()
        await client.set(key_name(0, key_id), value)
        samples.append((time.perf_counter() - t0) * 1e6)
    wall = time.perf_counter() - started
    await client.close()
    server.begin_drain()
    await task
    return _record(
        "server_set_rtt", {"ops": ops, "keys": keys, "seed": seed}, samples,
        wall, ops,
    )


async def _set_rtt_samples(
    ops: int, keys: int, seed: int, journal_dir: str | None
):
    """One SET-RTT measurement pass; returns (samples_us, wall_s)."""
    server, task = await _started_server(seed, journal_dir=journal_dir)
    client = MemcacheClient(port=server.port, pool_size=1)
    samples = []
    started = time.perf_counter()
    for i in range(ops):
        key_id = i % keys
        value = expected_value(seed, 0, key_id, 1)
        t0 = time.perf_counter()
        await client.set(key_name(0, key_id), value)
        samples.append((time.perf_counter() - t0) * 1e6)
    wall = time.perf_counter() - started
    await client.close()
    server.begin_drain()
    await task
    return samples, wall


#: Acceptable journal-on slowdown for SET RTT under fsync=interval.
JOURNAL_OVERHEAD_BUDGET = 1.15


async def bench_set_rtt_journal(ops: int, keys: int, seed: int):
    """SET RTT with the write-ahead journal off vs on (fsync=interval).

    Interleaved best-of-3 so the two configurations see the same machine
    weather; returns (off_record, on_record, overhead_ratio).  The ratio
    compares best-pass p50s — the budget gate in main() enforces
    JOURNAL_OVERHEAD_BUDGET on it.
    """
    import tempfile

    best: dict = {"off": None, "on": None}
    for _round in range(3):
        for mode in ("off", "on"):
            if mode == "on":
                with tempfile.TemporaryDirectory(prefix="zx-bench-wal-") as d:
                    samples, wall = await _set_rtt_samples(ops, keys, seed, d)
            else:
                samples, wall = await _set_rtt_samples(ops, keys, seed, None)
            p50 = percentile(samples, 50)
            if best[mode] is None or p50 < best[mode][0]:
                best[mode] = (p50, samples, wall)
    records = {}
    for mode in ("off", "on"):
        _p50, samples, wall = best[mode]
        records[mode] = _record(
            f"server_set_rtt_journal_{mode}",
            {"ops": ops, "keys": keys, "seed": seed, "rounds": 3,
             "fsync": "interval" if mode == "on" else None},
            samples, wall, ops,
        )
    ratio = best["on"][0] / best["off"][0] if best["off"][0] > 0 else 1.0
    return records["off"], records["on"], ratio


#: Acceptable extra SET-RTT slowdown for streaming to one live replica,
#: relative to the journal alone (the stream rides the journal's append
#: path, so the primary's ack must stay essentially free of it).
REPLICATION_OVERHEAD_BUDGET = 1.15


async def _replicated_samples(ops: int, keys: int, seed: int, journal_dir: str):
    """SET RTT on a primary streaming to one live replica, then GET RTT
    against that replica once it has fully converged.

    The replica runs as a ``cli serve`` subprocess on loopback — its own
    interpreter, exactly like a deployed pair — so the measurement is the
    primary's true streaming overhead, not two servers time-slicing one
    event loop.  Returns (set_samples_us, set_wall_s, get_samples_us,
    get_wall_s).
    """
    from repro.server.replchaos import ReplChaosConfig, _replica_child

    cache = ShardedZExpander(
        ZExpanderConfig(total_capacity=8 * 1024 * 1024, seed=seed),
        num_shards=2,
    )
    server = CacheServer(
        cache,
        ServerConfig(
            port=0, journal_dir=journal_dir, fsync="interval", repl_port=0
        ),
    )
    await server.start()
    task = asyncio.create_task(server.run())
    replica = _replica_child(
        ReplChaosConfig(seed=seed), server.repl_source.port
    )
    await replica.start()

    client = MemcacheClient(port=server.port, pool_size=1)
    samples = []
    started = time.perf_counter()
    for i in range(ops):
        key_id = i % keys
        value = expected_value(seed, 0, key_id, 1)
        t0 = time.perf_counter()
        await client.set(key_name(0, key_id), value)
        samples.append((time.perf_counter() - t0) * 1e6)
    wall = time.perf_counter() - started
    await client.close()

    # Let the replica fully converge, then time reads against it.
    reader = MemcacheClient(port=replica.port, pool_size=1)
    deadline = time.perf_counter() + 30.0
    while time.perf_counter() < deadline:
        stats = await reader.stats()
        if (
            stats.get("replication_connected") == "1"
            and stats.get("replication_lag_bytes") == "0"
        ):
            break
        await asyncio.sleep(0.02)
    get_samples = []
    get_started = time.perf_counter()
    for i in range(ops):
        t0 = time.perf_counter()
        await reader.get(key_name(0, i % keys))
        get_samples.append((time.perf_counter() - t0) * 1e6)
    get_wall = time.perf_counter() - get_started
    await reader.close()

    await replica.drain()
    server.begin_drain()
    await task
    return samples, wall, get_samples, get_wall


async def bench_set_rtt_replicated(ops: int, keys: int, seed: int):
    """SET RTT: journal alone vs journal + one live streaming replica.

    Interleaved best-of-3 (same discipline as bench_set_rtt_journal) so
    both configurations see the same machine weather.  Returns
    (journal_record, replicated_record, replica_get_record, ratio) where
    ratio compares best-pass p50s — main() gates it against
    REPLICATION_OVERHEAD_BUDGET.  Also times converged-replica GET RTT,
    the replicated-read path a failover client actually uses.
    """
    import tempfile

    best: dict = {"off": None, "on": None}
    best_get = None
    for _round in range(3):
        for mode in ("off", "on"):
            with tempfile.TemporaryDirectory(prefix="zx-bench-repl-") as d:
                if mode == "off":
                    samples, wall = await _set_rtt_samples(ops, keys, seed, d)
                    get_samples = None
                else:
                    samples, wall, get_samples, get_wall = (
                        await _replicated_samples(ops, keys, seed, d)
                    )
            p50 = percentile(samples, 50)
            if best[mode] is None or p50 < best[mode][0]:
                best[mode] = (p50, samples, wall)
            if get_samples:
                get_p50 = percentile(get_samples, 50)
                if best_get is None or get_p50 < best_get[0]:
                    best_get = (get_p50, get_samples, get_wall)
    records = {}
    for mode, replicas in (("off", 0), ("on", 1)):
        _p50, samples, wall = best[mode]
        records[mode] = _record(
            f"server_set_rtt_repl_{mode}",
            {"ops": ops, "keys": keys, "seed": seed, "rounds": 3,
             "fsync": "interval", "replicas": replicas},
            samples, wall, ops,
        )
    _get_p50, get_samples, get_wall = best_get
    get_record = _record(
        "server_replica_get_rtt",
        {"ops": ops, "keys": keys, "seed": seed, "rounds": 3, "replicas": 1},
        get_samples, get_wall, ops,
    )
    ratio = best["on"][0] / best["off"][0] if best["off"][0] > 0 else 1.0
    return records["off"], records["on"], get_record, ratio


#: 1 µs – 10 s in microseconds, 9 buckets per decade: fine enough that
#: interpolated p50/p99 track the raw-sample percentiles closely.
_RTT_BOUNDS = log_buckets(1.0, 1e7, per_decade=9)


async def bench_pooled_throughput(
    ops: int, keys: int, seed: int, workers: int = 8
) -> BenchRecord:
    """Concurrent GETs through one pooled client (the deployment shape).

    Each worker keeps its own latency histogram (no cross-task sharing
    mid-flight); the per-worker snapshots merge element-wise through
    :func:`merge_snapshots`, and p50/p99 come from the merged buckets —
    previously this bench reported ``p50_us: None``/``p99_us: None``.
    """
    server, task = await _started_server(seed)
    client = MemcacheClient(port=server.port, pool_size=4)
    await _populate(client, keys, seed)
    per_worker = ops // workers

    async def worker(worker_id: int):
        hist = Histogram(f"worker{worker_id}_rtt_us", bounds=_RTT_BOUNDS)
        for i in range(per_worker):
            t0 = time.perf_counter()
            await client.get(key_name(0, (worker_id * per_worker + i) % keys))
            hist.observe((time.perf_counter() - t0) * 1e6)
        return {
            "pooled_get_rtt_us": {
                "count": hist.count,
                "sum": hist.sum,
                "bounds": list(hist.bounds),
                "counts": list(hist.counts),
            }
        }

    started = time.perf_counter()
    snapshots = await asyncio.gather(*(worker(w) for w in range(workers)))
    wall = time.perf_counter() - started
    await client.close()
    server.begin_drain()
    await task
    merged = merge_snapshots(snapshots)["pooled_get_rtt_us"]
    rtt = Histogram("pooled_get_rtt_us", bounds=merged["bounds"])
    rtt.counts = list(merged["counts"])
    rtt._count = merged["count"]
    rtt._sum = merged["sum"]
    return BenchRecord(
        bench="server_pooled_throughput",
        config={"ops": per_worker * workers, "keys": keys, "seed": seed,
                "workers": workers, "pool_size": 4,
                "latency_source": "merged-worker-histograms"},
        ops_per_sec=(per_worker * workers) / wall if wall > 0 else None,
        p50_us=rtt.percentile(50),
        p99_us=rtt.percentile(99),
        wall_s=round(wall, 4),
        git_rev=_GIT_REV,
    )


async def bench_multiget_batch(
    ops: int, keys: int, seed: int, batch: int = 16
) -> BenchRecord:
    """Batched multi-GET: ``batch`` keys per request round-trip."""
    server, task = await _started_server(seed)
    client = MemcacheClient(port=server.port, pool_size=1)
    await _populate(client, keys, seed)
    rounds = max(1, ops // batch)
    samples = []
    started = time.perf_counter()
    for i in range(rounds):
        names = [key_name(0, (i * batch + j) % keys) for j in range(batch)]
        t0 = time.perf_counter()
        await client.get_many(names)
        samples.append((time.perf_counter() - t0) * 1e6)
    wall = time.perf_counter() - started
    await client.close()
    server.begin_drain()
    await task
    return _record(
        "server_multiget_batch",
        {"ops": rounds * batch, "keys": keys, "seed": seed, "batch": batch},
        samples, wall, rounds * batch,
    )


async def bench_multiget_pipelined(
    ops: int, keys: int, seed: int, batch: int = 16
) -> BenchRecord:
    """Per-key pipelined baseline: ``batch`` single-key GETs in one write.

    The server runs with ``batch_reads=False`` so every key takes the
    old sequential path (one cache lookup, one socket write per
    command).  This is the denominator of the multiget-gate speedup and
    stays recorded so regressions against the native batch path show up
    in the bench history.
    """
    server, task = await _started_server(seed, batch_reads=False)
    client = MemcacheClient(port=server.port, pool_size=1)
    await _populate(client, keys, seed)
    await client.close()
    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
    rounds = max(1, ops // batch)
    samples = []
    started = time.perf_counter()
    for i in range(rounds):
        burst = b"".join(
            b"get " + key_name(0, (i * batch + j) % keys) + b"\r\n"
            for j in range(batch)
        )
        t0 = time.perf_counter()
        writer.write(burst)
        await writer.drain()
        ends = 0
        while ends < batch:
            line = await reader.readline()
            if not line:
                raise ConnectionError("server closed mid-burst")
            if line == b"END\r\n":
                ends += 1
        samples.append((time.perf_counter() - t0) * 1e6)
    wall = time.perf_counter() - started
    writer.close()
    await writer.wait_closed()
    server.begin_drain()
    await task
    return _record(
        "server_multiget_pipelined",
        {"ops": rounds * batch, "keys": keys, "seed": seed, "batch": batch,
         "batch_reads": False},
        samples, wall, rounds * batch,
    )


async def bench_cluster_multiget(
    ops: int, keys: int, seed: int, nodes: int = 3, batch: int = 16
) -> BenchRecord:
    """Ring-routed multi-GET over a real 3-process cluster.

    Each batch fans out into per-node multigets issued concurrently, so
    the interesting comparison is against ``server_multiget_batch`` (the
    single-node baseline with the same batch size): the cluster pays one
    round-trip to the *slowest* involved node per batch plus routing
    overhead.  Recorded, not gated — the ratio depends on core count.
    """
    import tempfile

    from repro.cluster.client import ClusterClient
    from repro.cluster.procs import ClusterConfig, ClusterSupervisor

    with tempfile.TemporaryDirectory(prefix="zx-bench-cluster-") as workdir:
        supervisor = ClusterSupervisor(
            ClusterConfig(
                nodes=nodes, seed=seed, workdir=workdir, fsync="interval"
            )
        )
        addresses = await supervisor.start()
        client = ClusterClient(addresses, pool_size=2)
        try:
            for key_id in range(keys):
                await client.set(
                    key_name(0, key_id), expected_value(seed, 0, key_id, 1)
                )
            rounds = max(1, ops // batch)
            samples = []
            started = time.perf_counter()
            for i in range(rounds):
                names = [
                    key_name(0, (i * batch + j) % keys) for j in range(batch)
                ]
                t0 = time.perf_counter()
                await client.get_many(names)
                samples.append((time.perf_counter() - t0) * 1e6)
            wall = time.perf_counter() - started
        finally:
            await client.close()
            await supervisor.stop()
            await supervisor.terminate()
    return _record(
        "cluster_get_many",
        {"ops": rounds * batch, "keys": keys, "seed": seed, "batch": batch,
         "nodes": nodes},
        samples, wall, rounds * batch,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="bench")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--out", default=str(REPO_ROOT / "BENCH_server.json"), metavar="PATH"
    )
    args = parser.parse_args(argv)
    scale = SCALES[args.scale]
    global _GIT_REV
    _GIT_REV = git_revision(REPO_ROOT)

    async def run_all():
        records = []
        for bench in (
            bench_get_rtt,
            bench_set_rtt,
            bench_pooled_throughput,
            bench_multiget_batch,
            bench_multiget_pipelined,
            bench_cluster_multiget,
        ):
            record = await bench(scale["ops"], scale["keys"], args.seed)
            records.append(record)
            rtt = (
                f" p50={record.p50_us:.0f}us p99={record.p99_us:.0f}us"
                if record.p50_us is not None
                else ""
            )
            print(
                f"{record.bench}: {record.ops_per_sec:,.0f} ops/s"
                f"{rtt} ({record.wall_s:.2f}s)"
            )
        off, on, ratio = await bench_set_rtt_journal(
            scale["ops"], scale["keys"], args.seed
        )
        records.extend([off, on])
        print(
            f"{on.bench}: p50={on.p50_us:.0f}us vs {off.p50_us:.0f}us off "
            f"— overhead {ratio:.3f}x (budget {JOURNAL_OVERHEAD_BUDGET}x)"
        )
        repl_off, repl_on, replica_get, repl_ratio = (
            await bench_set_rtt_replicated(scale["ops"], scale["keys"], args.seed)
        )
        records.extend([repl_off, repl_on, replica_get])
        print(
            f"{repl_on.bench}: p50={repl_on.p50_us:.0f}us vs "
            f"{repl_off.p50_us:.0f}us journal-only — overhead "
            f"{repl_ratio:.3f}x (budget {REPLICATION_OVERHEAD_BUDGET}x)"
        )
        print(
            f"{replica_get.bench}: {replica_get.ops_per_sec:,.0f} ops/s "
            f"p50={replica_get.p50_us:.0f}us p99={replica_get.p99_us:.0f}us"
        )
        return records, ratio, repl_ratio

    records, ratio, repl_ratio = asyncio.run(run_all())
    merged = append_records(records, Path(args.out))
    print(
        f"wrote {len(records)} records to {args.out} "
        f"({len(merged)} total after merge)"
    )
    failed = False
    if ratio > JOURNAL_OVERHEAD_BUDGET:
        print(
            f"FAIL: journal-on SET RTT {ratio:.3f}x exceeds the "
            f"{JOURNAL_OVERHEAD_BUDGET}x budget",
            file=sys.stderr,
        )
        failed = True
    if repl_ratio > REPLICATION_OVERHEAD_BUDGET:
        print(
            f"FAIL: replicated SET RTT {repl_ratio:.3f}x exceeds the "
            f"{REPLICATION_OVERHEAD_BUDGET}x budget over journal-only",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
