"""Ablation — Access-Filter-guided sweep vs blind sweep."""

from repro.experiments import abl_zreplacement


def test_abl_zreplacement(run_once):
    result = run_once("abl_zreplacement", abl_zreplacement.run)
    guided = result.miss_ratio("access-filter sweep (paper)")
    blind = result.miss_ratio("blind sweep")
    # The Access Filter's within-block locality tracking must not hurt,
    # and normally helps.
    assert guided <= blind * 1.02
