"""Figure 9 — memcached-based throughput vs thread count (YCSB)."""

from repro.experiments import fig09_memcached_threads


def test_fig09_memcached_threads(run_once):
    result = run_once("fig09_memcached_threads", fig09_memcached_threads.run)
    for multiple in (1.5, 2.0, 2.5):
        memcached = dict(result.series(multiple, "memcached"))
        mzx = dict(result.series(multiple, "M-zExpander"))
        # Networking caps scaling far below linear and below ~700 K RPS.
        assert memcached[24] < 700_000
        assert memcached[24] / memcached[1] < 10
        # M-zExpander tracks memcached at every thread count.
        for threads in (1, 8, 24):
            assert 0.88 <= mzx[threads] / memcached[threads] <= 1.02
