"""Figure 15 — N/Z space re-allocation under a workload shift."""

from repro.experiments import fig15_adaptation


def test_fig15_adaptation(run_once):
    result = run_once("fig15_adaptation", fig15_adaptation.run)
    uniform = result.phase_points("uniform")
    zipfian = result.phase_points("zipfian")
    # Uniform phase: the controller gives the N-zone more space, and the
    # amount of (compressible) data cached falls.
    assert uniform[-1].nzone_capacity > uniform[0].nzone_capacity
    # Zipfian phase: space flows back to the Z-zone...
    assert zipfian[-1].nzone_capacity < zipfian[0].nzone_capacity
    # ...and the cache ends up holding more KV bytes than at the switch.
    assert (
        zipfian[-1].nzone_kv_bytes + zipfian[-1].zzone_kv_bytes
        > zipfian[0].nzone_kv_bytes + zipfian[0].zzone_kv_bytes
    )
