"""Figure 11 — request-processing-time CDFs at 24 threads."""

from repro.experiments import fig11_latency_cdf
from repro.experiments.hzx_runs import mix_label


def test_fig11_latency_cdf(run_once):
    result = run_once("fig11_latency_cdf", fig11_latency_cdf.run)
    label = mix_label(0.95, 0.05)
    # The paper's tail crossover: H-zExpander wins the 99th percentile.
    hcache_p99 = result.at(label, "H-Cache", 99.0)
    hzx_p99 = result.at(label, "H-zExpander", 99.0)
    assert hzx_p99 < hcache_p99
    # Magnitudes in the paper's range (4.0 vs 4.6 microseconds).
    assert 1.5 < hcache_p99 < 10.0
    assert 1.5 < hzx_p99 < 10.0
