"""Ablation — H-zExpander miss advantage vs cache size."""

from repro.experiments import abl_hzx_capacity


def test_abl_hzx_capacity(run_once):
    result = run_once("abl_hzx_capacity", abl_hzx_capacity.run)
    reductions = dict(result.reductions())
    ordered = [reductions[m] for m in sorted(reductions)]
    # The advantage grows with capacity: a tail-starved cache has no
    # N-zone slack to trade for a Z-zone (the reduction there may even be
    # slightly negative), while a cache that can hold the hot set plus a
    # compressed tail removes a large share of the remaining misses.
    assert ordered[-1] > 0.2
    assert ordered[-1] > ordered[0]
    assert all(reduction > -0.1 for reduction in ordered)
    # More items cached at every size.
    assert all(row[5] > 0 for row in result.rows)
