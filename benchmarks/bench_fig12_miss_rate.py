"""Figure 12 — miss rate (misses per second)."""

from repro.experiments import fig12_miss_rate
from repro.experiments.hzx_runs import mix_label


def test_fig12_miss_rate(run_once):
    result = run_once("fig12_miss_rate", fig12_miss_rate.run)
    for get_fraction, set_fraction in ((1.0, 0.0), (0.95, 0.05), (0.5, 0.5)):
        label = mix_label(get_fraction, set_fraction)
        hcache = dict(result.series(label, "H-Cache"))
        hzx = dict(result.series(label, "H-zExpander"))
        # Despite lower throughput, H-zExpander produces fewer misses per
        # second at every thread count (the paper's 30-40 % reductions).
        for threads in (1, 8, 24):
            assert hzx[threads] < hcache[threads]
    label = mix_label(0.95, 0.05)
    reduction = 1 - dict(result.series(label, "H-zExpander"))[24] / dict(
        result.series(label, "H-Cache")
    )[24]
    assert reduction > 0.2
