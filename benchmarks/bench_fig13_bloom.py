"""Figure 13 — Content Filters' effect on GET-miss throughput."""

from repro.experiments import fig13_bloom


def test_fig13_bloom(run_once):
    result = run_once("fig13_bloom", fig13_bloom.run)
    # Filters help at every miss ratio, and help more when more requests
    # miss (the paper's 39/53/64 % gains at 5 threads).
    for threads in (1, 5):
        gains = [result.gain(ratio, threads) for ratio in (0.5, 0.75, 1.0)]
        assert all(gain > 0.15 for gain in gains)
        assert gains[0] < gains[1] < gains[2]
    # The filters' false-positive ratio stays small (paper: ~5 %).
    assert result.false_positive_ratio < 0.12
