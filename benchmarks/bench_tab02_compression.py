"""Table 2 — compression ratio vs container size (Tweets / Places)."""

import pytest

from repro.experiments import tab02_compression


def test_tab02_compression(run_once):
    result = run_once("tab02_compression", tab02_compression.run)
    tweets = dict(result.series("Tweets", "lz4"))
    places = dict(result.series("Places", "lz4"))
    # Monotone growth with container size, both corpora (the paper's
    # motivation for batched compression).
    for series in (tweets, places):
        sizes = sorted(series)
        assert all(series[a] <= series[b] + 0.02 for a, b in zip(sizes, sizes[1:]))
    # Tweets do not compress individually (paper: 0.99).
    individual = {
        (corpus, codec): ind for corpus, codec, ind, _ in result.rows
    }
    assert individual[("Tweets", "lz4")] == pytest.approx(1.0, abs=0.08)
    # Places do (paper: 1.28).
    assert individual[("Places", "lz4")] > 1.1
    # 2 KB containers land near the paper's design point.
    assert 1.15 <= tweets[2048] <= 1.6
    assert 1.4 <= places[2048] <= 2.0
