"""Figure 8 — single-thread throughput, memcached vs M-zExpander."""

from repro.experiments import fig08_memcached_tput


def test_fig08_memcached_tput(run_once):
    result = run_once("fig08_memcached_tput", fig08_memcached_tput.run)
    # Paper: M-zExpander within ~4 % of memcached, as networking
    # dominates; allow modest slack at reproduction scale.
    for ratio in result.ratios():
        assert 0.90 <= ratio <= 1.02
    # memcached's absolute single-thread throughput anchor: <100 K RPS.
    for _w, _m, mc_rps, _zx_rps, _ratio in result.rows:
        assert 60_000 < mc_rps < 100_000
