"""Ablation — trie-of-blocks index vs per-item indexing."""

from repro.experiments import abl_index


def test_abl_index(run_once):
    result = run_once("abl_index", abl_index.run)
    trie_total = result.rows[0][1]
    memcached_total = result.rows[1][1]
    flat_total = result.rows[2][1]
    # The block trie's metadata is an order of magnitude below per-item
    # indexes (the paper's Figure 7 metadata argument).
    assert trie_total * 5 < flat_total
    assert trie_total * 10 < memcached_total
    # And lookups stay cheap: "usually fewer than three" probes.
    assert result.average_probes < 3.5
