#!/usr/bin/env python
"""Wall-clock benchmark harness -> ``BENCH_wallclock.json``.

Unlike the figure benches (which measure the *simulated* metrics the
paper reports), this harness times the reproduction itself: how many
replay requests per second the data plane sustains, per-request latency
percentiles, Z-zone microbenchmarks, and optionally the end-to-end
experiment suite.  Run it before and after optimisation work::

    PYTHONPATH=src python benchmarks/bench_wallclock.py --scale smoke
    PYTHONPATH=src python benchmarks/bench_wallclock.py            # bench scale
    PYTHONPATH=src python benchmarks/bench_wallclock.py --runall --jobs 4

Results land in ``BENCH_wallclock.json`` at the repo root (override with
``--out``), one record per bench in the
:class:`repro.analysis.benchjson.BenchRecord` schema.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.benchjson import (
    BenchRecord,
    append_records,
    git_revision,
    percentile,
)
from repro.common.clock import VirtualClock
from repro.common.hashing import hash_key
from repro.core import SimpleKVCache, ZExpander, ZExpanderConfig, replay_trace
from repro.experiments.common import (
    Scale,
    base_size_of,
    build_trace,
    build_value_source,
)
from repro.experiments.mzx_runs import _memcached_factory, _page_bytes, scale_seed
from repro.nzone.memcached import MemcachedZone
from repro.workloads.trace import OP_DELETE, OP_GET, OP_SET
from repro.zzone.zzone import ZZone

SCALES = {
    "smoke": Scale(num_keys=1500, num_requests=20_000, seed=42),
    "bench": Scale(num_keys=3000, num_requests=60_000, seed=42),
}
_REQUEST_RATE = 50_000.0
#: The Z-zone fast-path configuration the on/off benches (and the CI
#: zzone-fastpath gate) measure: per-block write-combining append regions
#: plus a decompressed-container LRU.
FASTPATH_APPEND_REGION = 1024
FASTPATH_CACHE_BLOCKS = 128


def _scale_config(scale: Scale) -> dict:
    return {
        "num_keys": scale.num_keys,
        "num_requests": scale.num_requests,
        "seed": scale.seed,
    }


def _build_mzx(
    scale: Scale,
    trace,
    capacity: int,
    verify_checksums: bool = True,
    fastpath: bool = False,
):
    clock = VirtualClock()
    config = ZExpanderConfig(
        total_capacity=capacity,
        nzone_fraction=0.5,
        nzone_factory=_memcached_factory,
        adaptive=False,
        marker_interval_seconds=0.5,
        seed=scale_seed(trace),
        verify_checksums=verify_checksums,
        append_region_bytes=FASTPATH_APPEND_REGION if fastpath else 0,
        decompressed_cache_blocks=FASTPATH_CACHE_BLOCKS if fastpath else 0,
    )
    return ZExpander(config, clock=clock), clock


def _build_memcached(capacity: int):
    cache = SimpleKVCache(MemcachedZone(capacity, page_bytes=_page_bytes(capacity)))
    return cache, VirtualClock()


def _latency_pass(cache, trace, values, clock, warmup_fraction=0.2):
    """Replay once more, timing each request; returns measured-phase µs."""
    warmup = int(len(trace) * warmup_fraction)
    tick = 1.0 / _REQUEST_RATE
    samples = []
    timer = time.perf_counter
    for position, (op, key_id, _size) in enumerate(trace):
        clock.advance(tick)
        key = trace.key_bytes(key_id)
        started = timer()
        if op == OP_GET:
            if cache.get(key) is None:
                cache.set(key, values.value(key_id))
        elif op == OP_SET:
            cache.set(key, values.value(key_id))
        elif op == OP_DELETE:
            cache.delete(key)
        if position >= warmup:
            samples.append((timer() - started) * 1e6)
    return samples


def bench_replay(name: str, system: str, scale: Scale, git_rev: str) -> BenchRecord:
    """Throughput + latency of one ETC replay against ``system``."""
    trace = build_trace("ETC", scale)
    values = build_value_source("ETC", trace, seed=scale.seed)
    capacity = int(base_size_of("ETC", scale) * 2)
    if system == "mzx":
        cache, clock = _build_mzx(scale, trace, capacity)
    else:
        cache, clock = _build_memcached(capacity)
    started = time.perf_counter()
    replay_trace(cache, trace, values, clock=clock, request_rate=_REQUEST_RATE)
    wall = time.perf_counter() - started

    # Fresh cache for the latency pass so both passes see a cold start.
    if system == "mzx":
        cache, clock = _build_mzx(scale, trace, capacity)
    else:
        cache, clock = _build_memcached(capacity)
    samples = _latency_pass(cache, trace, values, clock)
    return BenchRecord(
        bench=name,
        config={
            "workload": "ETC",
            "system": system,
            "capacity_multiple": 2.0,
            "request_rate": _REQUEST_RATE,
            **_scale_config(scale),
        },
        ops_per_sec=len(trace) / wall,
        p50_us=percentile(samples, 50.0),
        p99_us=percentile(samples, 99.0),
        wall_s=wall,
        git_rev=git_rev,
    )


def _zzone_corpus(count: int, value_bytes: int = 96):
    keys = [b"zkey:%010d" % index for index in range(count)]
    value = b"the quick brown fox jumps over the lazy dog "  # compressible
    value = (value * ((value_bytes // len(value)) + 1))[:value_bytes]
    values = [value[:-8] + b"%08d" % index for index in range(count)]
    return keys, [hash_key(key) for key in keys], values


def bench_zzone(scale: Scale, git_rev: str) -> list:
    """Z-zone microbenchmarks: SET, GET hit, GET miss, sweep pressure."""
    count = max(500, scale.num_keys)
    keys, hashes, values = _zzone_corpus(count)
    item_bytes = sum(len(k) + len(v) + 14 for k, v in zip(keys, values))
    records = []
    timer = time.perf_counter
    config = {"items": count, "value_bytes": 96, **_scale_config(scale)}

    # SET: populate an ample zone (no eviction pressure).
    zone = ZZone(capacity=item_bytes * 4, clock=VirtualClock(), seed=scale.seed)
    samples = []
    started = timer()
    for key, hashed, value in zip(keys, hashes, values):
        t0 = timer()
        zone.put(key, value, hashed)
        samples.append((timer() - t0) * 1e6)
    wall = timer() - started
    records.append(
        BenchRecord(
            bench="zzone_set",
            config=config,
            ops_per_sec=count / wall,
            p50_us=percentile(samples, 50.0),
            p99_us=percentile(samples, 99.0),
            wall_s=wall,
            git_rev=git_rev,
        )
    )

    # GET hit: every key is resident.
    samples = []
    started = timer()
    for key, hashed in zip(keys, hashes):
        t0 = timer()
        zone.get(key, hashed)
        samples.append((timer() - t0) * 1e6)
    wall = timer() - started
    records.append(
        BenchRecord(
            bench="zzone_get_hit",
            config=config,
            ops_per_sec=count / wall,
            p50_us=percentile(samples, 50.0),
            p99_us=percentile(samples, 99.0),
            wall_s=wall,
            git_rev=git_rev,
        )
    )

    # GET miss: absent keys, answered by the Content Filter.
    miss_keys = [b"miss:%010d" % index for index in range(count)]
    miss_hashes = [hash_key(key) for key in miss_keys]
    samples = []
    started = timer()
    for key, hashed in zip(miss_keys, miss_hashes):
        t0 = timer()
        zone.get(key, hashed)
        samples.append((timer() - t0) * 1e6)
    wall = timer() - started
    records.append(
        BenchRecord(
            bench="zzone_get_miss",
            config=config,
            ops_per_sec=count / wall,
            p50_us=percentile(samples, 50.0),
            p99_us=percentile(samples, 99.0),
            wall_s=wall,
            git_rev=git_rev,
        )
    )

    # Sweep: a zone sized for a quarter of the corpus, so puts keep
    # evicting through the CLOCK sweep.
    zone = ZZone(capacity=item_bytes // 4, clock=VirtualClock(), seed=scale.seed)
    samples = []
    started = timer()
    for key, hashed, value in zip(keys, hashes, values):
        t0 = timer()
        zone.put(key, value, hashed)
        samples.append((timer() - t0) * 1e6)
    wall = timer() - started
    records.append(
        BenchRecord(
            bench="zzone_sweep",
            config={**config, "capacity_fraction": 0.25},
            ops_per_sec=count / wall,
            p50_us=percentile(samples, 50.0),
            p99_us=percentile(samples, 99.0),
            wall_s=wall,
            git_rev=git_rev,
        )
    )
    return records


def bench_integrity(scale: Scale, git_rev: str) -> list:
    """Integrity-check overhead: the same paths with checksums on vs off.

    Two measurements: the Z-zone GET-hit microbench (where the per-block
    CRC is the *entire* added work) and the end-to-end M-zX replay with
    ``verify_checksums=False`` (the PR-1 fast path, which must stay
    within a few percent of the checked default).  A synthetic
    ``integrity_check_overhead`` record carries the computed ratios.
    """
    count = max(500, scale.num_keys)
    keys, hashes, values = _zzone_corpus(count)
    item_bytes = sum(len(k) + len(v) + 14 for k, v in zip(keys, values))
    timer = time.perf_counter
    records = []
    walls = {}
    for verify in (True, False):
        zone = ZZone(
            capacity=item_bytes * 4,
            clock=VirtualClock(),
            seed=scale.seed,
            verify_checksums=verify,
        )
        for key, hashed, value in zip(keys, hashes, values):
            zone.put(key, value, hashed)
        samples = []
        started = timer()
        for key, hashed in zip(keys, hashes):
            t0 = timer()
            zone.get(key, hashed)
            samples.append((timer() - t0) * 1e6)
        wall = timer() - started
        walls[verify] = wall
        records.append(
            BenchRecord(
                bench=f"zzone_get_hit_checksum_{'on' if verify else 'off'}",
                config={
                    "items": count,
                    "value_bytes": 96,
                    "verify_checksums": verify,
                    **_scale_config(scale),
                },
                ops_per_sec=count / wall,
                p50_us=percentile(samples, 50.0),
                p99_us=percentile(samples, 99.0),
                wall_s=wall,
                git_rev=git_rev,
            )
        )

    trace = build_trace("ETC", scale)
    value_source = build_value_source("ETC", trace, seed=scale.seed)
    capacity = int(base_size_of("ETC", scale) * 2)
    replay_walls = {}
    for verify in (True, False):
        cache, clock = _build_mzx(scale, trace, capacity, verify_checksums=verify)
        started = timer()
        replay_trace(
            cache, trace, value_source, clock=clock, request_rate=_REQUEST_RATE
        )
        replay_walls[verify] = timer() - started
    records.append(
        BenchRecord(
            bench="replay_etc_mzx_nochecksum",
            config={
                "workload": "ETC",
                "system": "mzx",
                "capacity_multiple": 2.0,
                "request_rate": _REQUEST_RATE,
                "verify_checksums": False,
                **_scale_config(scale),
            },
            ops_per_sec=len(trace) / replay_walls[False],
            wall_s=replay_walls[False],
            git_rev=git_rev,
        )
    )
    records.append(
        BenchRecord(
            bench="integrity_check_overhead",
            config={
                "get_hit_overhead_fraction": round(
                    walls[True] / walls[False] - 1.0, 4
                ),
                "replay_overhead_fraction": round(
                    replay_walls[True] / replay_walls[False] - 1.0, 4
                ),
                **_scale_config(scale),
            },
            wall_s=walls[True] - walls[False],
            git_rev=git_rev,
        )
    )
    return records


def bench_metrics_overhead(scale: Scale, git_rev: str) -> list:
    """Replay throughput with the metrics registry on vs off.

    The observability layer promises near-zero cost: sampled latency
    timing plus lazy mounted views.  Best-of-3 walls per mode keep the
    comparison stable on noisy machines; the ``metrics_overhead`` record
    carries the on/off ratio the CI smoke job asserts against.
    """
    from repro.metrics import MetricsRegistry

    trace = build_trace("ETC", scale)
    values = build_value_source("ETC", trace, seed=scale.seed)
    capacity = int(base_size_of("ETC", scale) * 2)
    timer = time.perf_counter
    walls = {False: float("inf"), True: float("inf")}
    registry = None
    # Interleave the two modes (off, on, off, on, ...) so machine warmup
    # and frequency drift hit both sides equally; keep the best of each.
    for _ in range(3):
        for metrics_on in (False, True):
            cache, clock = _build_mzx(scale, trace, capacity)
            run_registry = MetricsRegistry() if metrics_on else None
            if metrics_on:
                cache.bind_metrics(run_registry)
            started = timer()
            replay_trace(
                cache,
                trace,
                values,
                clock=clock,
                request_rate=_REQUEST_RATE,
                registry=run_registry,
            )
            wall = timer() - started
            if wall < walls[metrics_on]:
                walls[metrics_on] = wall
                if metrics_on:
                    registry = run_registry

    latency = registry.snapshot()["replay_request_seconds"]
    # Re-registration hands back the live histogram for percentiles.
    hist = registry.histogram("replay_request_seconds", timing=True)
    records = [
        BenchRecord(
            bench="replay_etc_mzx_metrics_off",
            config={
                "workload": "ETC",
                "system": "mzx",
                "metrics": False,
                "request_rate": _REQUEST_RATE,
                **_scale_config(scale),
            },
            ops_per_sec=len(trace) / walls["off"],
            wall_s=walls["off"],
            git_rev=git_rev,
        ),
        BenchRecord(
            bench="replay_etc_mzx_metrics_on",
            config={
                "workload": "ETC",
                "system": "mzx",
                "metrics": True,
                "request_rate": _REQUEST_RATE,
                "latency_samples": latency["count"],
                **_scale_config(scale),
            },
            ops_per_sec=len(trace) / walls[True],
            p50_us=hist.percentile(50.0) * 1e6,
            p99_us=hist.percentile(99.0) * 1e6,
            wall_s=walls[True],
            git_rev=git_rev,
        ),
        BenchRecord(
            bench="metrics_overhead",
            config={
                "overhead_fraction": round(walls[True] / walls[False] - 1.0, 4),
                **_scale_config(scale),
            },
            wall_s=walls[True] - walls[False],
            git_rev=git_rev,
        ),
    ]
    return records


def bench_fastpath(scale: Scale, git_rev: str) -> list:
    """M-zX replay with the Z-zone fast path on vs off (best-of-3 each).

    Interleaved (off, on, off, on, ...) so machine warmup and frequency
    drift hit both sides equally.  The ``zzone_fastpath_speedup`` record
    carries the on/off ratio the CI ``zzone-fastpath`` gate asserts
    against (>= 1.5x at bench scale; the acceptance target is 2x).
    """
    trace = build_trace("ETC", scale)
    values = build_value_source("ETC", trace, seed=scale.seed)
    capacity = int(base_size_of("ETC", scale) * 2)
    timer = time.perf_counter
    # "anchor" is the memcached replay measured inside the same
    # interleaved loop: the fastpath gate rescales committed numbers by
    # it, so it must share this exact methodology (best-of-3, fresh
    # cache per round) rather than reuse the single-shot
    # replay_etc_memcached record.
    walls = {"off": float("inf"), "on": float("inf"), "anchor": float("inf")}
    fast_stats = None
    for _ in range(3):
        for mode in ("off", "on", "anchor"):
            if mode == "anchor":
                cache, clock = _build_memcached(capacity)
            else:
                cache, clock = _build_mzx(
                    scale, trace, capacity, fastpath=(mode == "on")
                )
            started = timer()
            replay_trace(
                cache, trace, values, clock=clock, request_rate=_REQUEST_RATE
            )
            wall = timer() - started
            if wall < walls[mode]:
                walls[mode] = wall
                if mode == "on":
                    fast_stats = cache.zzone.stats
    fast_config = {
        "workload": "ETC",
        "system": "mzx",
        "capacity_multiple": 2.0,
        "request_rate": _REQUEST_RATE,
        "append_region_bytes": FASTPATH_APPEND_REGION,
        "decompressed_cache_blocks": FASTPATH_CACHE_BLOCKS,
        **_scale_config(scale),
    }
    return [
        BenchRecord(
            bench="replay_etc_mzx_fastpath_off",
            config={
                **fast_config,
                "append_region_bytes": 0,
                "decompressed_cache_blocks": 0,
            },
            ops_per_sec=len(trace) / walls["off"],
            wall_s=walls["off"],
            git_rev=git_rev,
        ),
        BenchRecord(
            bench="replay_etc_mzx_fastpath_on",
            config={
                **fast_config,
                "staged_puts": fast_stats.staged_puts,
                "staging_flushes": fast_stats.staging_flushes,
                "container_cache_hits": fast_stats.container_cache_hits,
                "container_cache_misses": fast_stats.container_cache_misses,
            },
            ops_per_sec=len(trace) / walls["on"],
            wall_s=walls["on"],
            git_rev=git_rev,
        ),
        BenchRecord(
            bench="replay_etc_fastpath_anchor",
            config={
                "workload": "ETC",
                "system": "memcached",
                "capacity_multiple": 2.0,
                "request_rate": _REQUEST_RATE,
                **_scale_config(scale),
            },
            ops_per_sec=len(trace) / walls["anchor"],
            wall_s=walls["anchor"],
            git_rev=git_rev,
        ),
        BenchRecord(
            bench="zzone_fastpath_speedup",
            config={
                "speedup": round(walls["off"] / walls["on"], 4),
                "append_region_bytes": FASTPATH_APPEND_REGION,
                "decompressed_cache_blocks": FASTPATH_CACHE_BLOCKS,
                **_scale_config(scale),
            },
            wall_s=walls["off"] - walls["on"],
            git_rev=git_rev,
        ),
    ]


def bench_runall(scale: Scale, jobs: int, git_rev: str) -> BenchRecord:
    """End-to-end ``cli run all`` timing (stdout suppressed)."""
    import contextlib
    import io

    from repro.experiments.cli import main as cli_main

    argv = [
        "run",
        "all",
        "--keys",
        str(scale.num_keys),
        "--requests",
        str(scale.num_requests),
        "--seed",
        str(scale.seed),
        "--jobs",
        str(jobs),
    ]
    started = time.perf_counter()
    with contextlib.redirect_stdout(io.StringIO()):
        status = cli_main(argv)
    wall = time.perf_counter() - started
    if status != 0:
        raise RuntimeError(f"cli run all exited with status {status}")
    return BenchRecord(
        bench="cli_run_all",
        config={"jobs": jobs, **_scale_config(scale)},
        wall_s=wall,
        git_rev=git_rev,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="bench")
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_wallclock.json",
        help="output JSON path (default: repo-root BENCH_wallclock.json)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for --runall"
    )
    parser.add_argument(
        "--runall",
        action="store_true",
        help="also time the full experiment suite (slow)",
    )
    args = parser.parse_args(argv)
    scale = SCALES[args.scale]
    git_rev = git_revision(REPO_ROOT)

    records = []
    for name, system in (
        ("replay_etc_mzx", "mzx"),
        ("replay_etc_memcached", "memcached"),
    ):
        record = bench_replay(name, system, scale, git_rev)
        print(
            f"{record.bench}: {record.ops_per_sec:,.0f} ops/s  "
            f"p50 {record.p50_us:.1f} µs  p99 {record.p99_us:.1f} µs  "
            f"({record.wall_s:.2f} s)"
        )
        records.append(record)
    for record in bench_zzone(scale, git_rev):
        print(
            f"{record.bench}: {record.ops_per_sec:,.0f} ops/s  "
            f"p50 {record.p50_us:.1f} µs  p99 {record.p99_us:.1f} µs  "
            f"({record.wall_s:.2f} s)"
        )
        records.append(record)
    for record in bench_integrity(scale, git_rev):
        if record.bench == "integrity_check_overhead":
            print(
                "integrity_check_overhead: "
                f"get-hit {record.config['get_hit_overhead_fraction']:+.1%}  "
                f"replay {record.config['replay_overhead_fraction']:+.1%}"
            )
        elif record.ops_per_sec:
            print(
                f"{record.bench}: {record.ops_per_sec:,.0f} ops/s  "
                f"({record.wall_s:.2f} s)"
            )
        records.append(record)
    for record in bench_metrics_overhead(scale, git_rev):
        if record.bench == "metrics_overhead":
            print(
                "metrics_overhead: "
                f"replay {record.config['overhead_fraction']:+.1%}"
            )
        elif record.ops_per_sec:
            print(
                f"{record.bench}: {record.ops_per_sec:,.0f} ops/s  "
                f"({record.wall_s:.2f} s)"
            )
        records.append(record)
    for record in bench_fastpath(scale, git_rev):
        if record.bench == "zzone_fastpath_speedup":
            print(f"zzone_fastpath_speedup: {record.config['speedup']:.2f}x")
        elif record.ops_per_sec:
            print(
                f"{record.bench}: {record.ops_per_sec:,.0f} ops/s  "
                f"({record.wall_s:.2f} s)"
            )
        records.append(record)
    if args.runall:
        record = bench_runall(scale, args.jobs, git_rev)
        print(f"{record.bench} (jobs={args.jobs}): {record.wall_s:.1f} s")
        records.append(record)

    merged = append_records(records, args.out)
    print(
        f"wrote {len(records)} records to {args.out} "
        f"({len(merged)} total after merge)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
