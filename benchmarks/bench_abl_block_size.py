"""Ablation — Z-zone block capacity sweep."""

from repro.experiments import abl_block_size


def test_abl_block_size(run_once):
    result = run_once("abl_block_size", abl_block_size.run)
    ratios = dict(result.ratio_series())
    # Bigger blocks compress better (Table 2's trend inside the cache)...
    assert ratios[4096] > ratios[512] > ratios[256]
    # ...but cost more bytes decompressed per access.
    costs = {size: dec for size, _r, _m, _i, dec in result.rows}
    assert costs[4096] > costs[512]
    # The 2 KB default sits past the knee: most of the ratio, a fraction
    # of the biggest block's access cost.
    assert ratios[2048] > 0.8 * ratios[4096]
    assert costs[2048] < 0.6 * costs[4096]
