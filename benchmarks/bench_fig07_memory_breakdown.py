"""Figure 7 — memory breakdown of three cache organisations."""

from repro.experiments import fig07_memory_breakdown


def test_fig07_memory_breakdown(run_once):
    result = run_once("fig07_memory_breakdown", fig07_memory_breakdown.run)
    memcached = result.by_label("memcached")
    compressed = result.by_label("memcached+item")
    zzone = result.by_label("zExpander")
    # Paper shape: memcached spends ~56 % on items, ~32 % on metadata;
    # the Z-zone spends ~88 % on items with tiny metadata.
    assert memcached.fraction("items") < 0.70
    assert memcached.fraction("metadata") > 0.15
    assert zzone.fraction("items") > memcached.fraction("items")
    assert zzone.fraction("metadata") < memcached.fraction("metadata")
    # Individual compression helps only modestly (paper: +13.5 % items).
    gain_individual = compressed.item_count / memcached.item_count - 1
    assert 0.0 <= gain_individual < 0.45
    # Batched compression holds far more data (paper: +126 %).
    gain_zzone = zzone.uncompressed_items / memcached.uncompressed_items - 1
    assert gain_zzone > 0.8
    assert gain_zzone > 3 * max(gain_individual, 0.01)
