"""Figure 1 — access CDF / long-tail coverage of the four workloads."""

from repro.experiments import fig01_access_cdf


def test_fig01_access_cdf(run_once):
    result = run_once("fig01_access_cdf", fig01_access_cdf.run)
    coverage = {name: measured for name, measured, _paper in result.rows}
    # Paper ordering: ETC is the most concentrated, USR the least.
    assert coverage["ETC"] < coverage["APP"] < coverage["USR"]
    # Every workload is long-tailed: a small fraction covers 80 %.
    assert all(value < 0.45 for value in coverage.values())
