#!/usr/bin/env python
"""CI gate for the batched multi-GET path (``multiget-gate`` job).

Three gates over one Z-zone-heavy workload (a cache small enough that
most resident items live compressed in the Z-zone):

1. **Byte fidelity** — every request shape is sent to *two* servers,
   one with ``batch_reads`` on and one with it off, and the raw reply
   bytes must match: native multi-key ``get`` (exercises the cache-level
   ``get_many``) and a pipelined burst of single-key GETs in one write
   (exercises server-side burst coalescing, whose replies must be
   byte-identical to one-command-at-a-time dispatch).  Per-key hit/miss
   counts must also match across the two servers.
2. **Decode sharing** — the batch server must report
   ``fastpath_container_decodes_saved > 0``: at least one Z-zone block
   decompression was shared across keys of a batch.
3. **Speedup floor** — interleaved best-of-``--rounds``: native
   ``get_many`` against the batch server must beat the same keys as
   pipelined per-key GETs against the batch-off server by ``--floor``
   (default 1.5x).

Deterministic facts (counts, digests, verdicts that cannot vary run to
run) go to **stdout** — CI runs the gate twice and byte-diffs the two
stdouts.  Wall-clock timings and the speedup verdict go to stderr.

Exit 0 on success, 1 on any failure.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.config import ZExpanderConfig
from repro.core.zexpander import ZExpander
from repro.server.client import MemcacheClient
from repro.server.loadgen import expected_value, key_name
from repro.server.server import CacheServer, ServerConfig

#: Small cache + low N-zone fraction: most resident items end up in
#: compressed Z-zone blocks, so batched reads have decodes to share.
CAPACITY = 192 * 1024
NZONE_FRACTION = 0.1
KEYS = 600
BATCH = 16
ROUNDS_CORRECTNESS = 40


async def _started(seed: int, batch_reads: bool):
    cache = ZExpander(
        ZExpanderConfig(
            total_capacity=CAPACITY,
            nzone_fraction=NZONE_FRACTION,
            seed=seed,
        )
    )
    server = CacheServer(cache, ServerConfig(port=0, batch_reads=batch_reads))
    await server.start()
    task = asyncio.create_task(server.run())
    return server, task


async def _populate(port: int, seed: int) -> None:
    client = MemcacheClient(port=port, pool_size=1)
    for key_id in range(KEYS):
        await client.set(key_name(0, key_id), expected_value(seed, 0, key_id, 1))
    await client.close()


def _batch_names(round_index: int):
    """16 keys per round: 14 resident-population keys (strided so they
    spread across trie blocks) + 2 never-set keys (miss accounting)."""
    names = []
    for j in range(BATCH - 2):
        names.append(key_name(0, (round_index * 7 + j * 41) % KEYS))
    names.append(key_name(9, round_index % KEYS))
    names.append(key_name(9, (round_index + 1) % KEYS))
    return names


async def _raw_connect(port: int):
    return await asyncio.open_connection("127.0.0.1", port)


async def _read_replies(reader: asyncio.StreamReader, ends: int) -> bytes:
    """Read raw bytes through ``ends`` END lines (workload values are
    CRLF-free, so line framing is unambiguous)."""
    out = []
    seen = 0
    while seen < ends:
        line = await reader.readline()
        if not line:
            raise ConnectionError("server closed mid-reply")
        out.append(line)
        if line == b"END\r\n":
            seen += 1
    return b"".join(out)


def _parse_values(reply: bytes):
    """(hits, misses-by-END-count irrelevant) -> list of (key, value)."""
    values = []
    lines = reply.split(b"\r\n")
    index = 0
    while index < len(lines):
        line = lines[index]
        if line.startswith(b"VALUE "):
            key = line.split(b" ")[1]
            values.append((key, lines[index + 1]))
            index += 2
            continue
        index += 1
    return values


async def _stats(port: int):
    reader, writer = await _raw_connect(port)
    writer.write(b"stats\r\n")
    await writer.drain()
    out = {}
    while True:
        line = await reader.readline()
        if line == b"END\r\n":
            break
        parts = line.rstrip().split(b" ", 2)
        if len(parts) == 3 and parts[0] == b"STAT":
            out[parts[1].decode()] = parts[2].decode()
    writer.close()
    await writer.wait_closed()
    return out


async def check_fidelity(port_on: int, port_off: int) -> dict:
    """Send every round in both shapes to both servers; compare bytes."""
    conn_on = await _raw_connect(port_on)
    conn_off = await _raw_connect(port_off)
    digest = hashlib.sha256()
    hits = misses = 0
    multiget_identical = burst_identical = True
    for round_index in range(ROUNDS_CORRECTNESS):
        names = _batch_names(round_index)
        # Shape (a): one native multi-key get -> one END.
        request = b"get " + b" ".join(names) + b"\r\n"
        replies = []
        for reader, writer in (conn_on, conn_off):
            writer.write(request)
            await writer.drain()
            replies.append(await _read_replies(reader, 1))
        if replies[0] != replies[1]:
            multiget_identical = False
        values = _parse_values(replies[0])
        hits += len(values)
        misses += len(names) - len(values)
        for key, value in values:
            digest.update(key + b"=" + value + b";")
        # Shape (b): the same keys as pipelined single-key GETs in one
        # write -> BATCH ENDs.  On the batch server this coalesces into
        # one burst; bytes must match the per-command server exactly.
        burst = b"".join(b"get " + name + b"\r\n" for name in names)
        replies = []
        for reader, writer in (conn_on, conn_off):
            writer.write(burst)
            await writer.drain()
            replies.append(await _read_replies(reader, len(names)))
        if replies[0] != replies[1]:
            burst_identical = False
        if _parse_values(replies[0]) != values:
            burst_identical = False
    for _, writer in (conn_on, conn_off):
        writer.close()
        await writer.wait_closed()
    return {
        "hits": hits,
        "misses": misses,
        "digest": digest.hexdigest(),
        "multiget_identical": multiget_identical,
        "burst_identical": burst_identical,
    }


async def measure(port_on: int, port_off: int, rounds: int) -> dict:
    """Interleaved best-of-``rounds`` walls: native batch vs pipelined."""
    timing_rounds = 120
    walls = {"batch": float("inf"), "pipelined": float("inf")}
    client = MemcacheClient(port=port_on, pool_size=1)
    reader, writer = await _raw_connect(port_off)
    for _ in range(rounds):
        started = time.perf_counter()
        for round_index in range(timing_rounds):
            await client.get_many(_batch_names(round_index))
        walls["batch"] = min(walls["batch"], time.perf_counter() - started)
        started = time.perf_counter()
        for round_index in range(timing_rounds):
            names = _batch_names(round_index)
            writer.write(b"".join(b"get " + n + b"\r\n" for n in names))
            await writer.drain()
            await _read_replies(reader, len(names))
        walls["pipelined"] = min(
            walls["pipelined"], time.perf_counter() - started
        )
    await client.close()
    writer.close()
    await writer.wait_closed()
    ops = timing_rounds * BATCH
    return {mode: ops / wall for mode, wall in walls.items()}


async def run(args) -> int:
    server_on, task_on = await _started(args.seed, batch_reads=True)
    server_off, task_off = await _started(args.seed, batch_reads=False)
    ok = True
    try:
        await _populate(server_on.port, args.seed)
        await _populate(server_off.port, args.seed)
        fidelity = await check_fidelity(server_on.port, server_off.port)
        stats = await _stats(server_on.port)
        saved = int(stats.get("fastpath_container_decodes_saved", "0"))
        batches = int(stats.get("cache_get_many_batches", "0"))
        # -- deterministic facts: stdout (CI byte-diffs two runs) ------------
        print(f"keys {KEYS} batch {BATCH} rounds {ROUNDS_CORRECTNESS}")
        print(f"hits {fidelity['hits']} misses {fidelity['misses']}")
        print(f"value digest {fidelity['digest']}")
        print(
            "multiget replies identical: "
            + ("yes" if fidelity["multiget_identical"] else "NO")
        )
        print(
            "coalesced burst replies identical: "
            + ("yes" if fidelity["burst_identical"] else "NO")
        )
        print(f"get_many batches served {batches}")
        print(f"container decodes saved {saved}")
        if not fidelity["multiget_identical"] or not fidelity["burst_identical"]:
            print("FAIL: batched replies diverge from sequential", file=sys.stderr)
            ok = False
        if saved <= 0:
            print(
                "FAIL: container_decodes_saved is 0 on a Z-zone-heavy "
                "multiget workload",
                file=sys.stderr,
            )
            ok = False
        if batches <= 0:
            print("FAIL: the batch server served no get_many batches",
                  file=sys.stderr)
            ok = False
        # -- wall-clock: stderr only -----------------------------------------
        ops = await measure(server_on.port, server_off.port, args.rounds)
        speedup = ops["batch"] / ops["pipelined"]
        verdict = "OK" if speedup >= args.floor else "FAIL"
        print(
            f"multiget speedup {verdict}: {speedup:.2f}x "
            f"(pipelined {ops['pipelined']:,.0f} ops/s, batch "
            f"{ops['batch']:,.0f} ops/s, floor {args.floor:.2f}x)",
            file=sys.stderr,
        )
        if speedup < args.floor:
            ok = False
    finally:
        server_on.begin_drain()
        server_off.begin_drain()
        await task_on
        await task_off
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--floor",
        type=float,
        default=1.5,
        help="min batch / pipelined speedup (default 1.5)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="interleaved timing rounds per mode (default 3)",
    )
    args = parser.parse_args(argv)
    return asyncio.run(run(args))


if __name__ == "__main__":
    sys.exit(main())
