"""Ablation — Z->N promotion policies."""

from repro.experiments import abl_promotion


def test_abl_promotion(run_once):
    result = run_once("abl_promotion", abl_promotion.run)
    reuse = result.row("reuse-time")
    always = result.row("always")
    never = result.row("never")
    # Always-promote churns items through the zones: far more demotions
    # and lower modelled throughput than the paper's re-use-time rule.
    assert always[3] > 2 * reuse[3]
    assert always[5] < reuse[5]
    # The re-use-time rule promotes selectively: strictly fewer
    # promotions than "always", strictly more than "never".
    assert never[2] == 0
    assert 0 < reuse[2] < always[2]
