#!/usr/bin/env python
"""CI gate for the Z-zone fast path (``zzone-fastpath`` job step).

Two gates, both over the seeded ETC replay:

1. **Speedup floor** — with write-combining append regions and the
   decompressed-container cache armed (the ``FASTPATH_*`` constants from
   ``bench_wallclock``), replay throughput must beat the knobs-off
   baseline by at least ``--floor`` (default 1.5x).  Interleaved
   best-of-N walls so machine warmup and frequency drift hit both
   configurations equally.
2. **Baseline drift** — the knobs-*off* replay must stay within
   ``--budget`` (default 5 %) of the newest committed
   ``replay_etc_mzx_fastpath_off`` record in ``BENCH_wallclock.json``.
   Raw wall-clock numbers are not comparable across machines, so the
   committed number is first rescaled by a machine-speed anchor: the
   ratio of the ``replay_etc_fastpath_anchor`` (memcached) bench
   measured *now* to its committed record — both sides measured by the
   same interleaved best-of-N loop in ``bench_fastpath()``.  Only slowdowns fail
   the gate (an unrelated speedup of the default path is not a
   regression); the signed drift is always printed.

Exit 0 on success, 1 on any failure.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from bench_wallclock import (
    _REQUEST_RATE,
    SCALES,
    _build_memcached,
    _build_mzx,
)
from repro.analysis.benchjson import load_records
from repro.core import replay_trace
from repro.experiments.common import (
    Scale,
    base_size_of,
    build_trace,
    build_value_source,
)

BENCH_JSON = REPO_ROOT / "BENCH_wallclock.json"


def _replay_wall(cache, clock, trace, values) -> float:
    started = time.perf_counter()
    replay_trace(cache, trace, values, clock=clock, request_rate=_REQUEST_RATE)
    return time.perf_counter() - started


def measure(scale: Scale, rounds: int) -> dict:
    """Interleaved best-of-``rounds`` walls for off / on / anchor."""
    trace = build_trace("ETC", scale)
    values = build_value_source("ETC", trace, seed=scale.seed)
    capacity = int(base_size_of("ETC", scale) * 2)
    walls = {"off": float("inf"), "on": float("inf"), "anchor": float("inf")}
    for _ in range(rounds):
        for mode in ("off", "on", "anchor"):
            if mode == "anchor":
                cache, clock = _build_memcached(capacity)
            else:
                cache, clock = _build_mzx(
                    scale, trace, capacity, fastpath=(mode == "on")
                )
            walls[mode] = min(walls[mode], _replay_wall(cache, clock, trace, values))
    return {mode: len(trace) / wall for mode, wall in walls.items()}


def _committed_ops(bench: str, num_keys: int) -> float:
    """Newest committed ops/s for ``bench`` at this scale (0.0 if absent)."""
    if not BENCH_JSON.exists():
        return 0.0
    best = 0.0
    for record in load_records(BENCH_JSON):
        # Appended in measurement order, so the last match is the newest.
        if (
            record.bench == bench
            and record.config.get("num_keys") == num_keys
            and record.ops_per_sec
        ):
            best = record.ops_per_sec
    return best


def check_speedup(ops: dict, floor: float) -> bool:
    speedup = ops["on"] / ops["off"]
    verdict = "OK" if speedup >= floor else "FAIL"
    print(
        f"zzone fastpath speedup {verdict}: {speedup:.2f}x "
        f"(off {ops['off']:,.0f} ops/s, on {ops['on']:,.0f} ops/s, "
        f"floor {floor:.2f}x)"
    )
    return speedup >= floor


def check_baseline_drift(ops: dict, scale: Scale, budget: float) -> bool:
    # Compare against the records bench_fastpath() measured with this
    # gate's exact methodology (interleaved best-of-3, fresh cache per
    # round) — the single-shot replay_etc_mzx/replay_etc_memcached rows
    # are not methodology-comparable and would turn noise into failures.
    committed_mzx = _committed_ops(
        "replay_etc_mzx_fastpath_off", scale.num_keys
    )
    committed_anchor = _committed_ops(
        "replay_etc_fastpath_anchor", scale.num_keys
    )
    if not committed_mzx or not committed_anchor:
        print(
            "baseline drift SKIP: no committed replay_etc_mzx_fastpath_off "
            f"/ replay_etc_fastpath_anchor records at "
            f"num_keys={scale.num_keys}"
        )
        return True
    machine_ratio = ops["anchor"] / committed_anchor
    expected = committed_mzx * machine_ratio
    drift = ops["off"] / expected - 1.0
    ok = drift >= -budget
    verdict = "OK" if ok else "FAIL"
    print(
        f"baseline drift {verdict}: {drift:+.1%} vs committed "
        f"(measured {ops['off']:,.0f} ops/s, expected {expected:,.0f} "
        f"after x{machine_ratio:.2f} anchor rescale, budget -{budget:.0%})"
    )
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="bench")
    parser.add_argument(
        "--floor",
        type=float,
        default=1.5,
        help="min fastpath-on / fastpath-off speedup (default 1.5)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=0.05,
        help="max knobs-off slowdown vs committed baseline (default 0.05)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="interleaved timing rounds per mode (default 3)",
    )
    args = parser.parse_args(argv)
    scale = SCALES[args.scale]
    ops = measure(scale, args.rounds)
    ok = check_speedup(ops, args.floor)
    ok = check_baseline_drift(ops, scale, args.budget) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
