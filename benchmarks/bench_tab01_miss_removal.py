"""Table 1 — misses removed by larger caches and better algorithms."""

from repro.experiments import tab01_miss_removal
from repro.experiments.common import WORKLOAD_NAMES


def test_tab01_miss_removal(run_once):
    result = run_once("tab01_miss_removal", tab01_miss_removal.run)
    for workload in WORKLOAD_NAMES:
        # The reference cell is exactly zero by construction.
        assert result.removed(workload, "LRU-X", 1.0) == 0.0
        # Growing the cache removes misses at every multiple, even under
        # the locality-blind LRU-X (the paper's key observation).
        previous = 0.0
        for multiple in (1.5, 2.0, 2.5, 3.0):
            removed = result.removed(workload, "LRU-X", multiple)
            assert removed < previous
            previous = removed
        # Capacity keeps paying even with the best algorithms.
        assert result.removed(workload, "LIRS", 3.0) < result.removed(
            workload, "LIRS", 1.0
        )
        assert result.removed(workload, "ARC", 3.0) < -0.2
