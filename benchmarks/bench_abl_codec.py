"""Ablation — Z-zone codec choice."""

from repro.experiments import abl_codec


def test_abl_codec(run_once):
    result = run_once("abl_codec", abl_codec.run)
    # Any real codec beats no compression in items held.
    assert result.items_for("lz4") > result.items_for("null")
    assert result.items_for("deflate-1") > result.items_for("null")
    # DEFLATE's entropy stage compresses these records harder than LZ4.
    assert result.ratio_for("deflate-1") >= result.ratio_for("lz4")
    # The calibrated ratio model lands near the LZ4 measurement it models.
    assert abs(result.ratio_for("model") - result.ratio_for("lz4")) < 0.45
