"""Figure 5 — miss ratio, memcached vs M-zExpander."""

from repro.experiments import fig05_memcached_miss
from repro.experiments.common import WORKLOAD_NAMES


def test_fig05_memcached_miss(run_once):
    result = run_once("fig05_memcached_miss", fig05_memcached_miss.run)
    for workload in WORKLOAD_NAMES:
        reductions = result.reductions(workload)
        # M-zExpander reduces the miss ratio at every cache size.
        assert all(reduction > 0 for reduction in reductions)
    # The paper's headline: reductions up to ~46 %.
    best = max(r for *_cells, r in result.rows)
    assert best > 0.15
