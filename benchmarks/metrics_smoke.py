#!/usr/bin/env python
"""CI smoke for the observability layer.

Two gates:

1. **Golden exposition** — a short seeded ETC replay with the registry
   bound renders ``to_prometheus(include_timing=False)`` byte-identically
   to ``benchmarks/results/metrics_smoke.prom``.  Timing metrics are
   excluded, so everything left is a pure function of the request
   sequence; any drift means cache behaviour (not just formatting)
   changed.  Regenerate deliberately with ``--update``.
2. **Overhead budget** — replay throughput with metrics enabled must
   stay within ``--budget`` (default 5 %) of the metrics-off loop,
   interleaved best-of-N so machine warmup hits both sides equally.

Exit 0 on success, 1 on any failure.
"""

from __future__ import annotations

import argparse
import difflib
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.common.clock import VirtualClock
from repro.core import ZExpander, ZExpanderConfig, replay_trace
from repro.experiments.common import (
    Scale,
    base_size_of,
    build_trace,
    build_value_source,
)
from repro.metrics import MetricsRegistry

GOLDEN = REPO_ROOT / "benchmarks" / "results" / "metrics_smoke.prom"
SCALE = Scale(num_keys=1500, num_requests=20_000, seed=42)
_REQUEST_RATE = 50_000.0


def _build(scale: Scale):
    clock = VirtualClock()
    config = ZExpanderConfig(
        total_capacity=int(base_size_of("ETC", scale) * 2),
        nzone_fraction=0.5,
        adaptive=False,
        marker_interval_seconds=0.5,
        seed=scale.seed,
    )
    return ZExpander(config, clock=clock), clock


def run_exposition(scale: Scale) -> str:
    """One seeded replay; returns the timing-free Prometheus text."""
    trace = build_trace("ETC", scale)
    values = build_value_source("ETC", trace, seed=scale.seed)
    cache, clock = _build(scale)
    registry = MetricsRegistry()
    cache.bind_metrics(registry)
    replay_trace(
        cache,
        trace,
        values,
        clock=clock,
        request_rate=_REQUEST_RATE,
        registry=registry,
    )
    return registry.to_prometheus(include_timing=False)


def check_golden(update: bool) -> bool:
    text = run_exposition(SCALE)
    if update:
        GOLDEN.write_text(text)
        print(f"wrote golden snapshot: {GOLDEN} ({len(text.splitlines())} lines)")
        return True
    if not GOLDEN.exists():
        print(f"FAIL: golden file missing: {GOLDEN} (run with --update)")
        return False
    golden = GOLDEN.read_text()
    if text == golden:
        print(f"golden exposition OK ({len(text.splitlines())} lines)")
        return True
    print("FAIL: exposition drifted from golden snapshot:")
    diff = difflib.unified_diff(
        golden.splitlines(), text.splitlines(),
        fromfile="golden", tofile="current", lineterm="", n=1,
    )
    for line in list(diff)[:40]:
        print(f"  {line}")
    return False


def check_overhead(budget: float, rounds: int) -> bool:
    trace = build_trace("ETC", SCALE)
    values = build_value_source("ETC", trace, seed=SCALE.seed)
    timer = time.perf_counter
    walls = {False: float("inf"), True: float("inf")}
    for _ in range(rounds):
        for metrics_on in (False, True):
            cache, clock = _build(SCALE)
            registry = MetricsRegistry() if metrics_on else None
            if metrics_on:
                cache.bind_metrics(registry)
            started = timer()
            replay_trace(
                cache,
                trace,
                values,
                clock=clock,
                request_rate=_REQUEST_RATE,
                registry=registry,
            )
            walls[metrics_on] = min(walls[metrics_on], timer() - started)
    overhead = walls[True] / walls[False] - 1.0
    verdict = "OK" if overhead <= budget else "FAIL"
    print(
        f"metrics overhead {verdict}: {overhead:+.1%} "
        f"(off {walls[False]:.2f}s, on {walls[True]:.2f}s, "
        f"budget {budget:.0%})"
    )
    return overhead <= budget


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true", help="regenerate the golden file"
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=0.05,
        help="max metrics-on overhead fraction (default 0.05)",
    )
    parser.add_argument(
        "--rounds",
        type=int,
        default=3,
        help="interleaved timing rounds per mode (default 3)",
    )
    parser.add_argument(
        "--skip-overhead",
        action="store_true",
        help="only check the golden exposition",
    )
    args = parser.parse_args(argv)
    ok = check_golden(args.update)
    if not args.update and not args.skip_overhead:
        ok = check_overhead(args.budget, args.rounds) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
