"""Figure 14 — impact of the N-zone target-service threshold."""

from repro.experiments import fig14_threshold


def test_fig14_threshold(run_once):
    result = run_once("fig14_threshold", fig14_threshold.run)
    series = {t: (rps, miss) for t, rps, miss in result.series()}
    # Larger threshold -> bigger N-zone -> higher miss ratio.
    assert series[0.99][1] > series[0.5][1]
    # The miss-ratio trend is monotone-ish across the sweep.
    thresholds = sorted(series)
    misses = [series[t][1] for t in thresholds]
    assert misses[-1] >= misses[0]
    # Throughput stays in a narrow band for "large but not ~100 %"
    # thresholds — the paper's argument for the 90 % default.
    mid_rps = [series[t][0] for t in thresholds if 0.7 <= t <= 0.95]
    assert max(mid_rps) / min(mid_rps) < 1.35
    # At the top end, pushing more traffic onto the N-zone buys
    # throughput (the paper's direction).
    assert series[0.99][0] >= series[0.7][0]
